package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/mpc"
	"repro/internal/sim"
)

// AblationRow is one configuration's outcome in an ablation study.
type AblationRow struct {
	Config    string
	Summary   metrics.Summary
	GPUTput   float64 // aggregate steady-state GPU throughput (img/s)
	CPUTput   float64 // steady-state CPU throughput (subsets/s)
	SolverIts float64 // reserved for solver studies (0 otherwise)
}

// summarizePerf extracts the steady-state application aggregates.
func summarizePerf(recs []core.PeriodRecord, steadyFrom int) (gpuTput, cpuTput float64) {
	if steadyFrom >= len(recs) {
		steadyFrom = 0
	}
	n := 0.0
	for _, r := range recs[steadyFrom:] {
		for _, tp := range r.GPUThroughput {
			gpuTput += tp
		}
		cpuTput += r.CPUThroughput
		n++
	}
	if n > 0 {
		gpuTput /= n
		cpuTput /= n
	}
	return gpuTput, cpuTput
}

// AblationWeights compares CapGPU with the throughput-inverted weight
// assignment against uniform weights (A1). It uses an asymmetric load —
// GPU 2 idle — where the weight design's effect is visible: the idle GPU
// should be parked and the busy devices granted its power.
func AblationWeights(seed int64, periods int) ([]AblationRow, error) {
	if periods <= 0 {
		periods = 80
	}
	run := func(uniform bool) (*AblationRow, error) {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		// Remove GPU 2's workload to create the asymmetry.
		if err := rig.Server.AttachPipeline(2, nil); err != nil {
			return nil, err
		}
		opts := core.Options{}
		opts.MPC.UniformWeights = uniform
		ctrl, err := core.NewCapGPU(rig.Model, rig.Server, nil, opts)
		if err != nil {
			return nil, err
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(850))
		if err != nil {
			return nil, err
		}
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		gpu, cpu := summarizePerf(recs, periods/2)
		name := "weighted (paper)"
		if uniform {
			name = "uniform (ablated)"
		}
		row := &AblationRow{
			Config:  name,
			Summary: metrics.Summarize(powerOf(recs), 850, periods/2, 0.02*850, 0.01*850),
			GPUTput: gpu,
			CPUTput: cpu,
		}
		return row, nil
	}
	weighted, err := run(false)
	if err != nil {
		return nil, err
	}
	uniform, err := run(true)
	if err != nil {
		return nil, err
	}
	return []AblationRow{*weighted, *uniform}, nil
}

// AblationDeltaSigma compares fractional-command resolution via
// first-order delta-sigma modulation against plain rounding (A2). The
// delta-sigma dithers between adjacent levels so the *average* applied
// frequency matches the controller's fractional output; rounding leaves
// a persistent quantization bias. The effect only matters on coarse
// grids, so this study runs on a server whose clocks move in the
// paper's §5 example granularity — 135 MHz GPU multiples and 1 GHz CPU
// steps ("toggling between the values 2, 2, 2, and 3").
func AblationDeltaSigma(seed int64, periods int) ([]AblationRow, error) {
	if periods <= 0 {
		periods = 100
	}
	run := func(enabled bool) (*AblationRow, error) {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		// Rebuild the server on a coarse actuation grid.
		cfg := rig.Server.Config()
		cfg.CPU.FreqStepGHz = 0.7
		for i := range cfg.GPUs {
			cfg.GPUs[i].FreqStepMHz = 135
		}
		coarse, err := buildServerLike(cfg, seed)
		if err != nil {
			return nil, err
		}
		rig.Server = coarse
		ctrl, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, core.Options{})
		if err != nil {
			return nil, err
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(905))
		if err != nil {
			return nil, err
		}
		h.Bank.SetEnabled(enabled)
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		name := "delta-sigma (paper)"
		if !enabled {
			name = "plain rounding (ablated)"
		}
		gpu, cpu := summarizePerf(recs, periods*2/10)
		return &AblationRow{
			Config:  name,
			Summary: metrics.Summarize(powerOf(recs), 905, periods*8/10, 0.02*905, 0.01*905),
			GPUTput: gpu,
			CPUTput: cpu,
		}, nil
	}
	on, err := run(true)
	if err != nil {
		return nil, err
	}
	off, err := run(false)
	if err != nil {
		return nil, err
	}
	return []AblationRow{*on, *off}, nil
}

// AblationHorizons sweeps the MPC's prediction and control horizons
// around the paper's (P=8, M=2) (A3).
func AblationHorizons(seed int64, periods int) ([]AblationRow, error) {
	if periods <= 0 {
		periods = 100
	}
	configs := []struct{ p, m int }{
		{2, 1}, {4, 1}, {4, 2}, {8, 2}, {16, 2}, {8, 4}, {16, 4},
	}
	var rows []AblationRow
	for _, c := range configs {
		rig, err := NewEvaluationRig(seed)
		if err != nil {
			return nil, err
		}
		opts := core.Options{MPC: mpc.Config{P: c.p, M: c.m}}
		ctrl, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, opts)
		if err != nil {
			return nil, err
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(950))
		if err != nil {
			return nil, err
		}
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		gpu, cpu := summarizePerf(recs, periods*2/10)
		rows = append(rows, AblationRow{
			Config:  fmt.Sprintf("P=%d M=%d", c.p, c.m),
			Summary: metrics.Summarize(powerOf(recs), 950, periods*8/10, 0.02*950, 0.01*950),
			GPUTput: gpu,
			CPUTput: cpu,
		})
	}
	return rows, nil
}

// AblationSolver compares the exact active-set QP against the
// SLSQP-style SQP on identical control sessions (A4). The two should
// produce near-identical control quality; the QP is the faster solver.
func AblationSolver(seed int64, periods int) ([]AblationRow, error) {
	if periods <= 0 {
		periods = 100
	}
	var rows []AblationRow
	for _, name := range []string{"capgpu", "capgpu-slsqp"} {
		r, err := RunSession(name, seed, periods, FixedSetpoint(950), nil)
		if err != nil {
			return nil, err
		}
		gpu, cpu := summarizePerf(r.Records, periods*2/10)
		label := "active-set QP"
		if name == "capgpu-slsqp" {
			label = "SLSQP"
		}
		rows = append(rows, AblationRow{
			Config:  label,
			Summary: r.Summary,
			GPUTput: gpu,
			CPUTput: cpu,
		})
	}
	return rows, nil
}

// buildServerLike builds a fresh server from a modified config with the
// standard evaluation workloads attached.
func buildServerLike(cfg sim.Config, seed int64) (*sim.Server, error) {
	s, err := sim.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	if err := attachEvalWorkloads(s, seed); err != nil {
		return nil, err
	}
	return s, nil
}

func powerOf(recs []core.PeriodRecord) []float64 {
	out := make([]float64, len(recs))
	for i, r := range recs {
		out[i] = r.AvgPowerW
	}
	return out
}
