package experiments

import (
	"io"

	"repro/internal/cluster"
	"repro/internal/controlplane"
	"repro/internal/core"
	"repro/internal/sysid"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// This file wires the control-plane daemon to the evaluation fleet:
// the same heavy/medium/light workload classes as the scale rack, with
// one system identification per class shared across every node the
// daemon ever builds — including nodes joined mid-run, which must come
// out identical whether built live or during checkpoint replay.

// DaemonClasses is the class catalogue the daemon cycles joins
// through, matching the scale fleet's heavy/medium/light template.
func DaemonClasses() []controlplane.ClassSpec {
	out := make([]controlplane.ClassSpec, len(scaleClasses))
	for i, c := range scaleClasses {
		out[i] = controlplane.ClassSpec{Name: c.name, Priority: c.priority}
	}
	return out
}

// NewDaemonNodeFactory returns a node factory for the daemon. Class
// models are identified lazily — once per class, on a twin seeded from
// the fleet seed exactly as NewScaleFleet seeds its twins — and cached
// inside the closure, so repeated joins (and replayed joins on
// restore) are cheap and bit-identical. Nodes get the paper's latency
// models wired, so hot SLO reconfiguration engages the controller's
// latency floors.
func NewDaemonNodeFactory(fleetSeed int64) func(name, class string, seed int64, priority int) (*cluster.Node, error) {
	models := map[string]*sysid.Model{}
	return func(name, class string, seed int64, priority int) (*cluster.Node, error) {
		var pipelines int
		found := false
		for c, cls := range scaleClasses {
			if cls.name != class {
				continue
			}
			pipelines = cls.pipelines
			found = true
			if models[class] == nil {
				twin, err := scaleServer(fleetSeed+5000+int64(c), cls.pipelines)
				if err != nil {
					return nil, err
				}
				m, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
				if err != nil {
					return nil, err
				}
				models[class] = m
			}
			break
		}
		if !found {
			return nil, errUnknownClass(class)
		}
		s, err := scaleServer(seed, pipelines)
		if err != nil {
			return nil, err
		}
		// Private model copy: controllers may adapt gains in place.
		m := *models[class]
		m.Gains = append([]float64(nil), m.Gains...)
		lms := daemonLatencyModels()
		ctrl, err := core.NewCapGPU(&m, s, lms, core.Options{})
		if err != nil {
			return nil, err
		}
		return cluster.NewNode(name, s, ctrl, priority)
	}
}

// daemonLatencyModels builds the per-GPU latency models (Eq. 10b law
// parameters), same as the single-server rig.
func daemonLatencyModels() []*sysid.LatencyModel {
	names := []string{"resnet50", "swin_t", "vgg16"}
	zoo := workload.Zoo()
	lms := make([]*sysid.LatencyModel, len(names))
	for i, n := range names {
		lms[i] = &sysid.LatencyModel{EMin: zoo[n].EMinBatch, Gamma: zoo[n].Gamma, FMax: 1350}
	}
	return lms
}

type errUnknownClass string

func (e errUnknownClass) Error() string {
	return "experiments: unknown daemon class " + string(e) + " (want heavy, medium, light)"
}

// NewDaemonDeps assembles the daemon dependencies over the evaluation
// fleet. hub and flightWriter may be nil.
func NewDaemonDeps(fleetSeed int64, hub *telemetry.Hub, flightWriter func(node string) (io.Writer, error)) controlplane.Deps {
	return controlplane.Deps{
		NewNode:      NewDaemonNodeFactory(fleetSeed),
		Classes:      DaemonClasses(),
		Hub:          hub,
		FlightWriter: flightWriter,
	}
}
