package experiments

import (
	"fmt"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// This file scales the E3x rack from the 3-server showcase to the
// fleet sizes the parallel coordinator exists for (capgpu-rack
// -nodes N -workers W, BenchmarkRackStep). Running a full system
// identification per node would dominate fleet construction at
// hundreds of nodes, so the fleet identifies one power model per
// workload class (heavy / medium / light — 3 / 2 / 1 busy pipelines)
// on a twin and shares the *identified coefficients* across that
// class's nodes; every node still owns its private seeded server,
// pipelines, controller, and model copy, so node loops stay fully
// independent between reallocation barriers.

// scaleClasses is the per-class workload template, cycled across the
// fleet (node i gets class i%3).
var scaleClasses = []struct {
	name      string
	pipelines int
	priority  int
}{
	{"heavy", 3, 2}, {"medium", 2, 1}, {"light", 1, 0},
}

// DefaultNodeBudgetW is the per-node share used when a fleet budget is
// not given explicitly: the 3-node rack's standard 2850 W breaker
// divided by its 3 servers.
const DefaultNodeBudgetW = 950

// scaleServer builds one class instance of the evaluation server.
func scaleServer(seed int64, pipelines int) (*sim.Server, error) {
	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		return nil, err
	}
	cfgs := evalPipelineConfigs(seed)
	for i := 0; i < pipelines && i < len(cfgs); i++ {
		p, err := workload.NewPipeline(cfgs[i])
		if err != nil {
			return nil, err
		}
		if err := s.AttachPipeline(i, p); err != nil {
			return nil, err
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
		RateAtMax: 40, FcMax: 2.4, NoiseStd: 0.02, Seed: seed + 9})
	if err != nil {
		return nil, err
	}
	s.AttachCPUWorkload(w)
	return s, nil
}

// scaleLLMServer builds one class instance of the LLM serving server:
// the first `pipelines` GPUs run the default serving mix (cycled), the
// rest idle — the same heavy/medium/light shape as the CNN fleet.
func scaleLLMServer(seed int64, pipelines int) (*sim.Server, error) {
	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		return nil, err
	}
	specs, err := workload.ParseLLMSpecs(DefaultLLMSpecDSL)
	if err != nil {
		return nil, err
	}
	cfgs, err := llmConfigsFor(specs, seed)
	if err != nil {
		return nil, err
	}
	for i := 0; i < pipelines && i < s.NumGPUs(); i++ {
		cfg := cfgs[i%len(cfgs)]
		cfg.Seed = seed + int64(i) + 1
		p, err := workload.NewLLMPipeline(cfg)
		if err != nil {
			return nil, err
		}
		if err := s.AttachWorkload(i, p); err != nil {
			return nil, err
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
		RateAtMax: 40, FcMax: 2.4, NoiseStd: 0.02, Seed: seed + 9})
	if err != nil {
		return nil, err
	}
	s.AttachCPUWorkload(w)
	return s, nil
}

// scaleClassServer dispatches on the fleet workload family.
func scaleClassServer(kind string, seed int64, pipelines int) (*sim.Server, error) {
	switch kind {
	case "", "cnn":
		return scaleServer(seed, pipelines)
	case "llm":
		return scaleLLMServer(seed, pipelines)
	default:
		return nil, fmt.Errorf("experiments: unknown fleet workload family %q (want cnn or llm)", kind)
	}
}

// NewScaleFleet builds a synthetic CNN fleet of n nodes named n000,
// n001, … cycling through the heavy/medium/light workload classes.
func NewScaleFleet(seed int64, n int) ([]*cluster.Node, error) {
	return NewScaleFleetWorkload(seed, n, "")
}

// NewScaleFleetWorkload is NewScaleFleet with a workload family:
// "" or "cnn" for the CNN pipelines, "llm" for the continuous-batching
// LLM serving pipelines. Each node's server and pipelines are seeded
// from the fleet seed plus the node index, so no two nodes share an
// RNG stream.
func NewScaleFleetWorkload(seed int64, n int, kind string) ([]*cluster.Node, error) {
	if n <= 0 {
		return nil, fmt.Errorf("experiments: fleet size %d must be positive", n)
	}
	// One identification per class, on a twin seeded away from every
	// fleet member.
	models := make([]*sysid.Model, len(scaleClasses))
	for c, cls := range scaleClasses {
		twin, err := scaleClassServer(kind, seed+5000+int64(c), cls.pipelines)
		if err != nil {
			return nil, err
		}
		if kind == "llm" {
			// Identify in the prefill-shaped partial-load regime, exactly
			// as NewLLMRig does: at mixed nominal load the utilization
			// adaptation can cancel (or invert) the power-frequency slope.
			for i := 0; i < twin.NumGPUs(); i++ {
				if lp, ok := twin.Workload(i).(*workload.LLMPipeline); ok {
					lp.SetOutputScale(llmPrefillOutScale)
					lp.SetArrivalScale(llmIdentArrScale)
				}
			}
		}
		m, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
		if err != nil {
			return nil, err
		}
		models[c] = m
	}
	nodes := make([]*cluster.Node, 0, n)
	for i := 0; i < n; i++ {
		cls := scaleClasses[i%len(scaleClasses)]
		s, err := scaleClassServer(kind, seed+int64(i)*37, cls.pipelines)
		if err != nil {
			return nil, err
		}
		// Private model copy: controllers may adapt gains in place, and
		// shared coefficients would couple the node loops.
		m := *models[i%len(scaleClasses)]
		m.Gains = append([]float64(nil), m.Gains...)
		ctrl, err := core.NewCapGPU(&m, s, nil, core.Options{})
		if err != nil {
			return nil, err
		}
		node, err := cluster.NewNode(fmt.Sprintf("n%03d", i), s, ctrl, cls.priority)
		if err != nil {
			return nil, err
		}
		node.Harness().WorkloadClass = cls.name
		nodes = append(nodes, node)
	}
	return nodes, nil
}

// NewScaleCoordinator builds a ready-to-run coordinator over a
// synthetic fleet of n nodes: policy allocation under a fixed breaker
// budget (budgetW <= 0 defaults to DefaultNodeBudgetW per node), the
// optional rack-plane fault schedule and telemetry hub from opts wired
// exactly as the 3-node rack wires them (per-node "<policy>/<node>"
// labels), and Workers set from opts.
func NewScaleCoordinator(seed int64, n int, policy cluster.Policy, budgetW float64, opts ClusterOptions) (*cluster.Coordinator, error) {
	if policy == nil {
		policy = cluster.DemandProportional{}
	}
	if budgetW <= 0 {
		budgetW = DefaultNodeBudgetW * float64(n)
	}
	nodes, err := NewScaleFleetWorkload(seed, n, opts.Workload)
	if err != nil {
		return nil, err
	}
	for _, node := range nodes {
		label := policy.Name() + "/" + node.Name
		if opts.Faults != nil {
			node.SetFaults(opts.Faults)
		}
		if opts.Telemetry != nil {
			// Per-node sink, not the bare hub: phase spans from
			// parallel node stepping must key by node.
			node.Harness().SetTelemetry(opts.Telemetry.NodeSink(label), label)
		}
		if opts.Flight != nil {
			if rec := opts.Flight(label); rec != nil {
				node.Harness().SetFlight(rec)
			}
		}
	}
	coord, err := cluster.NewCoordinator(nodes, policy, func(int) float64 { return budgetW })
	if err != nil {
		return nil, err
	}
	coord.Faults = opts.Faults
	coord.Workers = opts.Workers
	if opts.Telemetry != nil {
		coord.Telemetry = opts.Telemetry.NodeSink(policy.Name())
		sinks := make([]telemetry.Sink, len(nodes))
		for i, node := range nodes {
			sinks[i] = opts.Telemetry.NodeSink(policy.Name() + "/" + node.Name)
		}
		coord.NodeTelemetry = sinks
	}
	return coord, nil
}

// ScaleRackRow condenses a fleet run for capgpu-rack's -nodes mode:
// per-node tables stop scaling at hundreds of nodes, so the fleet
// reports rack-level aggregates plus health counts.
type ScaleRackRow struct {
	Policy            string
	Nodes             int
	Workers           int
	BudgetW           float64
	SteadyTotalW      float64
	OverBudgetPeriods int
	AggThroughput     float64
	DeadNodes         int // nodes dead at end of run
	CapViolations     int // summed over nodes
	DegradedPeriods   int // summed over nodes
	Uncontrolled      int // open-loop node-periods
}

// RunScaleRack builds and runs a synthetic fleet for the given number
// of periods and summarizes it.
func RunScaleRack(seed int64, periods, n int, policy cluster.Policy, budgetW float64, opts ClusterOptions) (*ScaleRackRow, error) {
	if periods <= 0 {
		periods = 60
	}
	coord, err := NewScaleCoordinator(seed, n, policy, budgetW, opts)
	if err != nil {
		return nil, err
	}
	if err := coord.Run(periods); err != nil {
		return nil, fmt.Errorf("experiments: scale rack %s: %w", coord.Policy.Name(), err)
	}
	budget := coord.BudgetW(0)
	total := coord.TotalPowerSeries()
	steady := total[periods/2:]
	mean, over := 0.0, 0
	for _, p := range steady {
		mean += p
		if p > budget*1.015 {
			over++
		}
	}
	row := &ScaleRackRow{
		Policy:            coord.Policy.Name(),
		Nodes:             n,
		Workers:           opts.Workers,
		BudgetW:           budget,
		SteadyTotalW:      mean / float64(len(steady)),
		OverBudgetPeriods: over,
		AggThroughput:     coord.AggregateThroughput(periods / 2),
	}
	for i, node := range coord.Nodes {
		if coord.NodeDead(i) {
			row.DeadNodes++
		}
		s := SummarizeNode(node.Name, node.Records())
		row.CapViolations += s.CapViolations
		row.DegradedPeriods += s.DegradedPeriods
		row.Uncontrolled += s.UncontrolledPeriods
	}
	return row, nil
}
