package experiments

import "fmt"

// EfficiencyRow reports a controller's steady-state energy efficiency —
// the metric a capped data center ultimately buys: inferences per Joule
// under the same power budget.
type EfficiencyRow struct {
	Controller string
	ImgPerSec  float64 // aggregate steady-state GPU throughput
	PowerW     float64 // steady-state mean power
	ImgPerKJ   float64 // inferences per kilojoule
	SubsetsKJ  float64 // CPU workload: feature subsets per kilojoule
}

// EnergyEfficiency compares inferences-per-Joule across controllers at a
// fixed cap. Since every convergent controller draws (nearly) the same
// power at the same cap, efficiency differences are throughput
// differences — this view makes the stakes of allocation quality
// explicit in the unit operators pay for.
func EnergyEfficiency(seed int64, periods int, capW float64) ([]EfficiencyRow, error) {
	if periods <= 0 {
		periods = 100
	}
	if capW <= 0 {
		capW = 1000
	}
	names := []string{"safe-fixed-step-1", "gpu-only", "capgpu"}
	var rows []EfficiencyRow
	for _, n := range names {
		r, err := RunSession(n, seed, periods, FixedSetpoint(capW), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: efficiency %s: %w", n, err)
		}
		from := len(r.Records) * 2 / 10
		var img, subs, energy, power, cnt float64
		for _, rec := range r.Records[from:] {
			for _, tp := range rec.GPUThroughput {
				img += tp * 4 // images this period (T = 4 s)
			}
			subs += rec.CPUThroughput * 4
			energy += rec.EnergyJ
			power += rec.AvgPowerW
			cnt++
		}
		rows = append(rows, EfficiencyRow{
			Controller: r.Controller,
			ImgPerSec:  img / (cnt * 4),
			PowerW:     power / cnt,
			ImgPerKJ:   img / energy * 1000,
			SubsetsKJ:  subs / energy * 1000,
		})
	}
	return rows, nil
}
