package experiments

import (
	"math"
	"testing"
)

func TestExtensionAdaptiveShape(t *testing.T) {
	rows, err := ExtensionAdaptive(31, 100)
	if err != nil {
		t.Fatal(err)
	}
	static, adaptive := rows[0], rows[1]
	// The adaptive model must predict post-change power much better than
	// the stale static model.
	if adaptive.PredRMSEPost >= static.PredRMSEPost*0.7 {
		t.Fatalf("adaptive prediction RMSE %g should be well below static %g",
			adaptive.PredRMSEPost, static.PredRMSEPost)
	}
	// Control itself stays fine either way (the §4.4 stability margin
	// covers the gain error), so the tracking RMSEs are comparable.
	if adaptive.PowerRMSEPost > static.PowerRMSEPost*1.5 {
		t.Fatalf("adaptive tracking %g degraded vs static %g",
			adaptive.PowerRMSEPost, static.PowerRMSEPost)
	}
	if len(adaptive.GainsEnd) != 4 {
		t.Fatalf("gains: %v", adaptive.GainsEnd)
	}
}

func TestExtensionInfeasibleCapShape(t *testing.T) {
	rows, err := ExtensionInfeasibleCap(32, 60)
	if err != nil {
		t.Fatal(err)
	}
	freq, multi := rows[0], rows[1]
	// Frequency-only control is stuck above the cap; the multi-layer
	// reaches it by engaging memory throttles.
	if freq.SteadyErrW < 15 {
		t.Fatalf("frequency-only error %g W suspiciously small for an infeasible cap", freq.SteadyErrW)
	}
	if math.Abs(multi.SteadyErrW) > 8 {
		t.Fatalf("multi-layer error %g W should be near zero", multi.SteadyErrW)
	}
	if multi.ThrottlesEnd == 0 {
		t.Fatal("multi-layer engaged no throttles")
	}
}

func TestExtensionClusterShape(t *testing.T) {
	rows, err := ExtensionCluster(33, 60, 2850)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows: %d", len(rows))
	}
	byName := map[string]ClusterRow{}
	for _, r := range rows {
		byName[r.Policy] = r
	}
	for name, r := range byName {
		// Every policy must keep the rack essentially within budget.
		if r.OverBudgetPeriods > 2 {
			t.Fatalf("%s exceeded the rack budget in %d steady periods", name, r.OverBudgetPeriods)
		}
		if r.SteadyTotalW > r.BudgetW*1.01 {
			t.Fatalf("%s steady total %g above budget %g", name, r.SteadyTotalW, r.BudgetW)
		}
	}
	// Demand-aware allocation buys rack throughput over the uniform split.
	if byName["demand-proportional"].AggThroughput <= byName["uniform"].AggThroughput {
		t.Fatalf("demand-proportional %g img/s should beat uniform %g img/s",
			byName["demand-proportional"].AggThroughput, byName["uniform"].AggThroughput)
	}
	// The priority policy gives the heavy (highest-priority) node the
	// largest cap.
	pr := byName["priority"].PerNodeCapW
	if !(pr[0] > pr[1] && pr[1] >= pr[2]) {
		t.Fatalf("priority caps not ordered: %v", pr)
	}
}

func TestEnergyEfficiencyShape(t *testing.T) {
	rows, err := EnergyEfficiency(6, 100, 1000)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]EfficiencyRow{}
	for _, r := range rows {
		byName[r.Controller] = r
	}
	// Same cap, so efficiency ordering follows throughput: CapGPU turns
	// the budget into the most inferences per Joule.
	if byName["CapGPU"].ImgPerKJ <= byName["GPU-Only"].ImgPerKJ {
		t.Fatalf("CapGPU %g img/kJ should beat GPU-Only %g",
			byName["CapGPU"].ImgPerKJ, byName["GPU-Only"].ImgPerKJ)
	}
	for _, r := range rows {
		if r.ImgPerKJ <= 0 || r.PowerW <= 0 {
			t.Fatalf("degenerate efficiency row: %+v", r)
		}
	}
}

func TestExtensionBatchSLOShape(t *testing.T) {
	rows, err := ExtensionBatchSLO(34, 60)
	if err != nil {
		t.Fatal(err)
	}
	fixed, adaptive := rows[0], rows[1]
	if fixed.MissRate < 0.9 {
		t.Fatalf("fixed batch should miss the unreachable SLO ~always: %g", fixed.MissRate)
	}
	if adaptive.MissRate > 0.1 {
		t.Fatalf("adaptive batching should hold the SLO: miss %g", adaptive.MissRate)
	}
	if adaptive.FinalBatch >= fixed.FinalBatch {
		t.Fatalf("batch did not shrink: %d vs %d", adaptive.FinalBatch, fixed.FinalBatch)
	}
	// The feasibility comes at a throughput-efficiency price.
	if adaptive.Throughput >= fixed.Throughput {
		t.Fatalf("expected a throughput cost: %g vs %g", adaptive.Throughput, fixed.Throughput)
	}
}
