package experiments

import "testing"

// TestExtensionRobustness asserts the R1 acceptance contract: under the
// 10-period meter dropout at a 900 W cap, CapGPU with graceful
// degradation takes zero cap violations and resumes tracking within 10
// periods of meter recovery, while the fallback-disabled run
// demonstrably violates the cap.
func TestExtensionRobustness(t *testing.T) {
	res, err := ExtensionRobustness(5, 60)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("want 3 rows, got %d", len(res.Rows))
	}
	graceful, strawman, fixed := res.Rows[0], res.Rows[1], res.Rows[2]

	if graceful.CapViolations != 0 {
		t.Fatalf("graceful CapGPU took %d cap violations (worst excess %.1f W)",
			graceful.CapViolations, graceful.WorstExcessW)
	}
	if graceful.RecoveryPeriods < 0 || graceful.RecoveryPeriods > 10 {
		t.Fatalf("graceful CapGPU recovery = %d periods, want within 10", graceful.RecoveryPeriods)
	}
	if graceful.DegradedPeriods < 10 {
		t.Fatalf("graceful CapGPU degraded for %d periods, want >= 10 (the dropout)", graceful.DegradedPeriods)
	}
	if graceful.FailSafePeriods < 7 {
		t.Fatalf("graceful CapGPU fail-safe for %d periods, want >= 7 of the 10 blind ones", graceful.FailSafePeriods)
	}

	if strawman.CapViolations == 0 {
		t.Fatal("fallback-disabled CapGPU should demonstrably violate the cap")
	}
	if strawman.WorstExcessW <= graceful.WorstExcessW {
		t.Fatalf("strawman worst excess %.1f W not above graceful %.1f W",
			strawman.WorstExcessW, graceful.WorstExcessW)
	}

	if fixed.CapViolations != 0 {
		t.Fatalf("Safe Fixed-Step with degradation took %d cap violations", fixed.CapViolations)
	}
}
