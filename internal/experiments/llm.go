package experiments

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

// This file hosts the LLM serving rig and the R2 regime-switch
// experiment. The serving family (internal/workload.LLMPipeline) makes
// power depend on the prefill/decode phase mix: decode barely answers
// the core clock, prefill answers nearly linearly. R2 drives a cyclic
// prefill↔decode regime switch and compares phase-blind capping
// (which rides the clocks up during decode, then eats the next prefill
// burst at full clocks) against the phase-aware controller (gain
// scheduling + prefill-headroom guard).

// DefaultLLMSpecDSL is the standard three-GPU serving mix: a dense 7B
// (decode-leaning), a MoE (PALS power variance), and a dense 70B.
const DefaultLLMSpecDSL = "llama7b@6:512+160;mixtral@2.2:640+192;llama70b@1:448+224"

// llmConfigsFor builds one pipeline config per GPU from parsed specs.
func llmConfigsFor(specs []workload.LLMSpec, seed int64) ([]workload.LLMConfig, error) {
	zoo := workload.LLMZoo()
	cfgs := make([]workload.LLMConfig, len(specs))
	for i, spec := range specs {
		prof, ok := zoo[spec.Model]
		if !ok {
			return nil, fmt.Errorf("experiments: unknown llm model %q", spec.Model)
		}
		if spec.Experts > 0 {
			prof.Experts = spec.Experts
			if prof.MoEPowerStd == 0 {
				prof.MoEPowerStd = 0.06
			}
		}
		cfgs[i] = workload.LLMConfig{
			Profile: prof,
			Spec:    spec,
			FgMax:   1350,
			Seed:    seed + int64(i) + 1,
		}
	}
	return cfgs, nil
}

// attachLLMWorkloads wires serving pipelines (one per GPU, cycling the
// spec list if it is shorter) plus the host CPU workload onto a server.
func attachLLMWorkloads(s *sim.Server, seed int64, specs []workload.LLMSpec) error {
	cfgs, err := llmConfigsFor(specs, seed)
	if err != nil {
		return err
	}
	for i := 0; i < s.NumGPUs(); i++ {
		cfg := cfgs[i%len(cfgs)]
		cfg.Seed = seed + int64(i) + 1
		p, err := workload.NewLLMPipeline(cfg)
		if err != nil {
			return err
		}
		if err := s.AttachWorkload(i, p); err != nil {
			return err
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
		RateAtMax: 40, RateExp: 1, FcMax: 2.4, NoiseStd: 0.02, Seed: seed + 4})
	if err != nil {
		return err
	}
	s.AttachCPUWorkload(w)
	return nil
}

// llmPhaseLaw derives the controller-side phase power law for a spec
// mix: the per-phase exponents are the profile averages, and IdentExp
// is the effective exponent of the sub-saturated identification sweep
// (see llmIdentEffExp) — dividing by it is what lets the gain schedule
// recover the saturated prefill-window slope the sweep undersold.
func llmPhaseLaw(cfgs []workload.LLMConfig) *core.PhasePowerLaw {
	var pre, dec float64
	for _, cfg := range cfgs {
		pre += cfg.Profile.AlphaPrefill
		dec += cfg.Profile.AlphaDecode
	}
	n := float64(len(cfgs))
	return &core.PhasePowerLaw{
		PrefillExp: pre / n,
		DecodeExp:  dec / n,
		IdentExp:   llmIdentEffExp,
	}
}

// NewLLMRig builds the LLM-serving evaluation testbed on the standard
// Xeon + 3×V100 server: parse the spec DSL (empty = DefaultLLMSpecDSL),
// identify the power model on a twin running the same serving mix, and
// fit per-GPU TPOT latency models (decode-phase law: tiny gamma, so SLO
// frequency floors stay out of the controller's way — decode latency is
// not clock-limited, queue starvation is what the SLO actually bites
// on). Rig.PhaseLaw carries the derived phase power law for the
// phase-aware controller.
func NewLLMRig(seed int64, specDSL string) (*Rig, error) {
	if specDSL == "" {
		specDSL = DefaultLLMSpecDSL
	}
	specs, err := workload.ParseLLMSpecs(specDSL)
	if err != nil {
		return nil, err
	}

	twin, err := sim.NewServer(sim.DefaultTestbed(seed + 100))
	if err != nil {
		return nil, err
	}
	if err := attachLLMWorkloads(twin, seed+100, specs); err != nil {
		return nil, err
	}
	// Identify in the prefill-heavy regime: at mixed nominal load the
	// utilization adaptation (u ∝ f^-γ) nearly cancels the decode-blended
	// power slope and the regression can even turn negative; the
	// prefill-heavy operating point has an unambiguous positive slope.
	// llmPhaseLaw's IdentExp records this regime so the phase-aware
	// controller can re-scale the gains to other phase mixes.
	for i := 0; i < twin.NumGPUs(); i++ {
		if lp, ok := twin.Workload(i).(*workload.LLMPipeline); ok {
			lp.SetOutputScale(llmPrefillOutScale)
			lp.SetArrivalScale(llmIdentArrScale)
		}
	}
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		return nil, fmt.Errorf("experiments: llm identification: %w", err)
	}

	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		return nil, err
	}
	if err := attachLLMWorkloads(s, seed, specs); err != nil {
		return nil, err
	}

	cfgs, err := llmConfigsFor(specs, seed)
	if err != nil {
		return nil, err
	}
	ng := s.NumGPUs()
	lms := make([]*sysid.LatencyModel, ng)
	names := make([]string, ng)
	for i := 0; i < ng; i++ {
		cfg := cfgs[i%len(cfgs)]
		names[i] = cfg.Spec.Model
		lms[i] = &sysid.LatencyModel{
			// Reference TPOT at a healthy 8-sequence batch and f_max.
			EMin:  8 / cfg.Profile.DecodeTokPerS,
			Gamma: cfg.Profile.GammaDecode,
			FMax:  1350,
		}
	}
	return &Rig{Server: s, Model: model, LatencyModels: lms, ModelNames: names, PhaseLaw: llmPhaseLaw(cfgs)}, nil
}

// LLM regime schedule: a short prefill-heavy burst window at the top of
// every cycle (chatty traffic: many prompts, short answers), then a
// long decode-heavy tail (few prompts, long generations). Every cycle
// boundary is a regime switch the controller must survive.
const (
	llmCycleLen   = 24
	llmPrefillLen = 8

	// Regime load levers. The prefill window is chatty traffic (many
	// prompts, short answers) sized to be feasible at mid clocks but to
	// saturate — and starve decode — when clocks are slammed toward the
	// floor. The decode window is generation-heavy traffic whose power
	// barely answers the clocks, with arrivals frequent enough that
	// Poisson clumping does not dominate the period-average power.
	llmPrefillOutScale = 0.25
	llmPrefillArrScale = 3.0
	llmDecodeOutScale  = 0.9
	llmDecodeArrScale  = 0.85

	// Identification runs in the prefill-shaped regime (so the power
	// slope is unambiguously positive) but at partial load — the sweep
	// sees a milder version of the burst the controller must later
	// survive. At partial load the batcher absorbs part of every clock
	// change (utilization adapts as u ∝ f^-γ), so the identified gains
	// underestimate the slope of a saturated prefill window; that
	// calibration gap is exactly what phase-blind capping inherits.
	llmIdentArrScale = 1.3

	// Effective power-law exponent of the sub-saturated identification
	// sweep, i.e. the exponent the identified gains actually correspond
	// to once utilization adaptation has discounted the raw phase blend.
	// The phase-aware gain schedule divides by this, so at a saturated
	// prefill window's mix it recovers the true (steeper) slope that the
	// sweep undersold. Calibrated for the default rig.
	llmIdentEffExp = 0.45
)

// LLMRegimeOnPeriod is the OnPeriodStart hook driving the cyclic
// regime switch on every LLM pipeline of the server.
func LLMRegimeOnPeriod(k int, s *sim.Server) {
	prefill := k%llmCycleLen < llmPrefillLen
	for i := 0; i < s.NumGPUs(); i++ {
		lp, ok := s.Workload(i).(*workload.LLMPipeline)
		if !ok {
			continue
		}
		if prefill {
			lp.SetOutputScale(llmPrefillOutScale)
			lp.SetArrivalScale(llmPrefillArrScale)
		} else {
			lp.SetOutputScale(llmDecodeOutScale)
			lp.SetArrivalScale(llmDecodeArrScale)
		}
	}
}

// llmTPOTSLOs maps model name to the R2 per-GPU TPOT SLO in seconds,
// sized ≈2× the healthy prefill-window tail so a well-clocked pipeline
// holds it and a starved one (clocks slammed into prefill saturation)
// blows through it. The MoE entry is looser: expert-imbalance jitter
// gives mixtral a heavy TPOT tail even at full clocks.
var llmTPOTSLOs = map[string]float64{
	"llama7b":  0.06,
	"mixtral":  0.10,
	"llama70b": 0.06,
}

// llmPhaseSLOs returns the per-GPU TPOT SLOs for a rig's model mix,
// falling back to 20× the latency model's reference TPOT for models
// without a calibrated entry.
func llmPhaseSLOs(names []string, lms []*sysid.LatencyModel) []float64 {
	slos := make([]float64, len(lms))
	for i, lm := range lms {
		if s, ok := llmTPOTSLOs[names[i]]; ok {
			slos[i] = s
		} else {
			slos[i] = 20 * lm.EMin
		}
	}
	return slos
}

// LLMPhaseRow is one controller configuration's R2 summary.
type LLMPhaseRow struct {
	Config        string
	CapViolations int     // periods with true power above cap by >2%
	WorstExcessW  float64 // worst true period-average excess over the cap
	SLOMissRate   float64 // fraction of (period, GPU) TPOT SLO misses
	SteadyRMSE    float64 // tracking RMSE over prefill windows after warmup
	MeanTokPerS   float64 // aggregate token throughput (run mean)
}

// LLMPhaseResult is the R2 experiment outcome.
type LLMPhaseResult struct {
	SetpointW  float64
	Periods    int
	CycleLen   int
	PrefillLen int
	SLOs       []float64
	Rows       []LLMPhaseRow
}

// ExtensionLLMPhase is the R2 robustness experiment: phase-aware vs
// phase-blind capping under the cyclic prefill↔decode regime switch.
// Every configuration runs on a fresh rig from the same seed, so all
// see identical arrival, noise, and drift streams.
func ExtensionLLMPhase(seed int64, periods int) (*LLMPhaseResult, error) {
	if periods <= 0 {
		periods = 96
	}
	const cap = 900.0
	configs := []struct {
		label string
		opts  core.Options
	}{
		{"CapGPU phase-blind", core.Options{}},
		{"CapGPU phase-blind adaptive (RLS)", core.Options{Adaptive: true}},
		{"CapGPU phase-aware", core.Options{PhaseAware: true}},
	}
	res := &LLMPhaseResult{SetpointW: cap, Periods: periods, CycleLen: llmCycleLen, PrefillLen: llmPrefillLen}
	for _, cfg := range configs {
		rig, err := NewLLMRig(seed, "")
		if err != nil {
			return nil, err
		}
		opts := cfg.opts
		if opts.PhaseAware {
			opts.PhaseLaw = rig.PhaseLaw
		}
		ctrl, err := core.NewCapGPU(rig.Model, rig.Server, rig.LatencyModels, opts)
		if err != nil {
			return nil, err
		}
		slos := llmPhaseSLOs(rig.ModelNames, rig.LatencyModels)
		if res.SLOs == nil {
			res.SLOs = slos
		}
		h, err := core.NewHarness(rig.Server, ctrl, FixedSetpoint(cap))
		if err != nil {
			return nil, err
		}
		h.SLOs = func(int) []float64 { return slos }
		h.OnPeriodStart = LLMRegimeOnPeriod
		recs, err := h.Run(periods)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, summarizeLLMPhase(cfg.label, cap, recs))
	}
	return res, nil
}

// summarizeLLMPhase condenses one run into an R2 row.
func summarizeLLMPhase(label string, cap float64, recs []core.PeriodRecord) LLMPhaseRow {
	row := LLMPhaseRow{Config: label}
	var trueW, prefillW []float64
	misses, total := 0, 0
	var tok float64
	for k, rec := range recs {
		for _, tp := range rec.GPUThroughput {
			tok += tp
		}
		// The first cycle is the cold-start transient (every controller
		// starts at the frequency floor and eats the same saturated first
		// prefill window); violations and SLO misses are judged from the
		// second cycle on, where the regimes differ by policy, not by
		// initial conditions.
		if k < llmCycleLen {
			continue
		}
		trueW = append(trueW, rec.TrueAvgPowerW)
		if excess := rec.TrueAvgPowerW - cap; excess > row.WorstExcessW {
			row.WorstExcessW = excess
		}
		// Tracking quality is judged where tracking is feasible: the
		// prefill windows (decode power is clock-flat and can sit below
		// the cap no matter what the controller does).
		if k%llmCycleLen < llmPrefillLen {
			prefillW = append(prefillW, rec.TrueAvgPowerW)
		}
		for _, m := range rec.SLOMiss {
			total++
			if m {
				misses++
			}
		}
	}
	row.CapViolations = metrics.Violations(trueW, cap, 0.02*cap)
	if total > 0 {
		row.SLOMissRate = float64(misses) / float64(total)
	}
	if len(prefillW) > 0 {
		row.SteadyRMSE = metrics.RMSE(prefillW, cap)
	}
	if len(recs) > 0 {
		row.MeanTokPerS = tok / float64(len(recs))
	}
	if math.IsNaN(row.SteadyRMSE) {
		row.SteadyRMSE = 0
	}
	return row
}
