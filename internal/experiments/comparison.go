package experiments

import (
	"fmt"

	"repro/internal/metrics"
)

// Fig3Result holds the 900 W baseline-comparison sessions (Fig. 3).
type Fig3Result struct {
	SetpointW float64
	Runs      map[string]*RunResult // keyed by controller build name
	Order     []string
}

// Fig3PowerControl runs the §6.2 comparison: CPU-Only, GPU-Only, the two
// CPU+GPU splits, Fixed-Step and CapGPU, each for `periods` control
// periods at a 900 W set point.
func Fig3PowerControl(seed int64, periods int) (*Fig3Result, error) {
	if periods <= 0 {
		periods = 100
	}
	names := []string{"cpu-only", "gpu-only", "cpu+gpu-50", "cpu+gpu-60", "fixed-step-1", "capgpu"}
	res := &Fig3Result{SetpointW: 900, Runs: map[string]*RunResult{}, Order: names}
	for _, n := range names {
		r, err := RunSession(n, seed, periods, FixedSetpoint(900), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig3 %s: %w", n, err)
		}
		res.Runs[n] = r
	}
	return res, nil
}

// Fig4Result holds the Fixed-Step step-size study (Fig. 4).
type Fig4Result struct {
	SetpointW float64
	Runs      map[string]*RunResult
	Order     []string
}

// Fig4FixedStep runs Fixed-Step with step sizes 1 and 5 at 900 W.
func Fig4FixedStep(seed int64, periods int) (*Fig4Result, error) {
	if periods <= 0 {
		periods = 100
	}
	names := []string{"fixed-step-1", "fixed-step-5"}
	res := &Fig4Result{SetpointW: 900, Runs: map[string]*RunResult{}, Order: names}
	for _, n := range names {
		r, err := RunSession(n, seed, periods, FixedSetpoint(900), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig4 %s: %w", n, err)
		}
		res.Runs[n] = r
	}
	return res, nil
}

// Fig5SafeFixedStep runs Safe Fixed-Step with step sizes 1, 3 and 5 at
// 900 W (Fig. 5).
func Fig5SafeFixedStep(seed int64, periods int) (*Fig4Result, error) {
	if periods <= 0 {
		periods = 100
	}
	names := []string{"safe-fixed-step-1", "safe-fixed-step-3", "safe-fixed-step-5"}
	res := &Fig4Result{SetpointW: 900, Runs: map[string]*RunResult{}, Order: names}
	for _, n := range names {
		r, err := RunSession(n, seed, periods, FixedSetpoint(900), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig5 %s: %w", n, err)
		}
		res.Runs[n] = r
	}
	return res, nil
}

// Fig6Point is one (controller, set point) cell of the sweep.
type Fig6Point struct {
	Controller string
	SetpointW  float64
	MeanW      float64
	StdW       float64
	AbsErrW    float64 // |mean − set point|
}

// Fig6Result is the control-accuracy sweep across set points (Fig. 6).
type Fig6Result struct {
	SetpointsW []float64
	Order      []string
	Points     []Fig6Point
}

// Fig6SetpointSweep evaluates control accuracy at set points 900–1200 W
// in 50 W steps, averaging the last 80 of 100 periods (§6.3). Following
// the paper, Fixed-Step is replaced by Safe Fixed-Step; the CPU+GPU
// splits are included to document their non-convergence.
func Fig6SetpointSweep(seed int64, periods int) (*Fig6Result, error) {
	if periods <= 0 {
		periods = 100
	}
	steady := 80 * periods / 100
	names := []string{"safe-fixed-step-1", "gpu-only", "cpu+gpu-50", "cpu+gpu-60", "capgpu"}
	res := &Fig6Result{Order: names}
	for sp := 900.0; sp <= 1200; sp += 50 {
		res.SetpointsW = append(res.SetpointsW, sp)
		for _, n := range names {
			r, err := RunSession(n, seed, periods, FixedSetpoint(sp), nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %s@%g: %w", n, sp, err)
			}
			ss := metrics.SteadyState(r.PowerSeries(), steady)
			mean := metrics.Mean(ss)
			res.Points = append(res.Points, Fig6Point{
				Controller: n,
				SetpointW:  sp,
				MeanW:      mean,
				StdW:       metrics.Std(ss),
				AbsErrW:    abs(mean - sp),
			})
		}
	}
	return res, nil
}

// Fig7Row is one controller's steady-state application performance.
type Fig7Row struct {
	Controller    string
	GPUThroughput []float64 // img/s per GPU (t1..t3), steady-state mean
	GPULatencyS   []float64 // s/batch per GPU
	CPUThroughput float64   // subsets/s
	CPULatencyS   float64   // s/subset
}

// Fig7Result compares application performance across methods (Fig. 7).
type Fig7Result struct {
	SetpointW float64
	Rows      []Fig7Row
}

// Fig7Performance runs Safe Fixed-Step, GPU-Only and CapGPU at 1000 W
// and reports steady-state GPU inference throughput/latency and CPU
// throughput/latency (Fig. 7a–d).
func Fig7Performance(seed int64, periods int) (*Fig7Result, error) {
	if periods <= 0 {
		periods = 100
	}
	steady := 80 * periods / 100
	names := []string{"safe-fixed-step-1", "gpu-only", "capgpu"}
	res := &Fig7Result{SetpointW: 1000}
	for _, n := range names {
		r, err := RunSession(n, seed, periods, FixedSetpoint(1000), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s: %w", n, err)
		}
		recs := r.Records[len(r.Records)-min(steady, len(r.Records)):]
		ng := len(recs[0].GPUThroughput)
		row := Fig7Row{
			Controller:    r.Controller,
			GPUThroughput: make([]float64, ng),
			GPULatencyS:   make([]float64, ng),
		}
		for _, rec := range recs {
			for i := 0; i < ng; i++ {
				row.GPUThroughput[i] += rec.GPUThroughput[i]
				row.GPULatencyS[i] += rec.GPULatencyS[i]
			}
			row.CPUThroughput += rec.CPUThroughput
			row.CPULatencyS += rec.CPULatencyS
		}
		inv := 1 / float64(len(recs))
		for i := 0; i < ng; i++ {
			row.GPUThroughput[i] *= inv
			row.GPULatencyS[i] *= inv
		}
		row.CPUThroughput *= inv
		row.CPULatencyS *= inv
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
