package experiments

import (
	"repro/internal/mat"
	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

// Table1Row is one configuration of the motivation experiment (§3.2).
type Table1Row struct {
	Config        string
	CPUFreqGHz    float64
	GPUFreqMHz    float64
	PreLatencyS   float64 // preprocessing seconds per image
	GPULatencyS   float64 // seconds per batch
	QueueDelayS   float64 // seconds per image
	ThroughputIPS float64 // images per second
	AvgPowerW     float64
}

// Table1Result reproduces Table 1.
type Table1Result struct {
	Rows []Table1Row
}

// motivationPipeline builds the §3.2 workload: ten parallel requests
// classifying wildlife images with GoogLeNet on the RTX-3090 rig, CPU
// preprocessing feeding a shared queue.
func motivationPipeline(seed int64) (workload.PipelineConfig, error) {
	zoo := workload.Zoo()
	return workload.PipelineConfig{
		Model:           zoo["googlenet"],
		Workers:         10,
		PreLatencyBase:  0.13, // s/img per worker at 2.1 GHz
		PreLatencyExp:   0.3,  // torchvision transforms are partly memory-bound
		ArrivalRateMax:  7.3,  // calibrated pipeline capacity at 2.1 GHz
		ArrivalExp:      0.5,
		QueueCap:        8,
		ServiceBatchEff: 11.8, // partial batches under starvation
		FcMax:           2.1,
		FgMax:           810,
		Seed:            seed,
	}, nil
}

// Table1Motivation runs the three frequency configurations of §3.2:
// CPU-only (1.1 GHz, 810 MHz), GPU-only (2.1 GHz, 495 MHz), and CapGPU's
// midpoint (1.6 GHz, 660 MHz), measuring end-to-end pipeline behavior.
func Table1Motivation(seed int64) (*Table1Result, error) {
	configs := []struct {
		name   string
		fc, fg float64
	}{
		{"CPU-only", 1.1, 810},
		{"GPU-only", 2.1, 495},
		{"CapGPU", 1.6, 660},
	}
	out := &Table1Result{}
	for _, cfg := range configs {
		s, err := sim.NewServer(sim.MotivationTestbed(seed))
		if err != nil {
			return nil, err
		}
		pcfg, err := motivationPipeline(seed + 10)
		if err != nil {
			return nil, err
		}
		p, err := workload.NewPipeline(pcfg)
		if err != nil {
			return nil, err
		}
		if err := s.AttachPipeline(0, p); err != nil {
			return nil, err
		}
		s.SetCPUFreq(cfg.fc)
		if _, err := s.SetGPUFreq(0, cfg.fg); err != nil {
			return nil, err
		}
		// 200 requests × 20 images at ~6 img/s is a few-minute run;
		// discard a warmup, then average.
		const warm, steady = 30, 200
		var tput, gpuLat, qDelay, preLat, pw []float64
		for t := 0; t < warm+steady; t++ {
			smp := s.Tick(1)
			if t < warm {
				continue
			}
			st := smp.GPUStats[0]
			tput = append(tput, st.Throughput)
			gpuLat = append(gpuLat, st.GPUBatchLatencyS)
			qDelay = append(qDelay, st.QueueDelayS)
			preLat = append(preLat, st.PreLatencyS)
			pw = append(pw, smp.MeasuredW)
		}
		out.Rows = append(out.Rows, Table1Row{
			Config:        cfg.name,
			CPUFreqGHz:    cfg.fc,
			GPUFreqMHz:    cfg.fg,
			PreLatencyS:   metrics.Mean(preLat),
			GPULatencyS:   metrics.Mean(gpuLat),
			QueueDelayS:   metrics.Mean(qDelay),
			ThroughputIPS: metrics.Mean(tput),
			AvgPowerW:     metrics.Mean(pw),
		})
	}
	return out, nil
}

// Fig2aResult reproduces the system-identification figure: measured vs
// predicted power across the excitation schedule, with the fit's R².
type Fig2aResult struct {
	Model *sysid.Model
	//lint:ignore units mixed-unit excitation points by design: column 0 CPU GHz, the rest GPU MHz
	Freqs     [][]float64
	Measured  []float64
	Predicted []float64
}

// Fig2aSystemID reproduces §4.2's example: a single-CPU single-GPU
// server, sweep the GPU clock 435→1350 MHz with the CPU at 1.4 GHz, then
// the CPU 1.0→2.1 GHz with the GPU at 495 MHz, fit by least squares.
func Fig2aSystemID(seed int64) (*Fig2aResult, error) {
	cfg := sim.Config{
		CPU:        sim.XeonGold5215(),
		GPUs:       []sim.GPUSpec{sim.TeslaV100()},
		OtherW:     250,
		MeasNoiseW: 3,
		DriftStdW:  14,
		Seed:       seed,
	}
	s, err := sim.NewServer(cfg)
	if err != nil {
		return nil, err
	}
	zoo := workload.Zoo()
	p, err := workload.NewPipeline(workload.PipelineConfig{
		Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
		ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	if err := s.AttachPipeline(0, p); err != nil {
		return nil, err
	}

	dwell := func() float64 {
		s.Tick(1) // settle
		sum := 0.0
		for k := 0; k < 4; k++ {
			sum += s.Tick(1).MeasuredW
		}
		return sum / 4
	}

	var recs []sysid.Record
	res := &Fig2aResult{}
	// Sweep 1: GPU 435→1350 at CPU 1.4 GHz (§4.2's example).
	s.SetCPUFreq(1.4)
	for fg := 435.0; fg <= 1350; fg += 105 {
		if _, err := s.SetGPUFreq(0, fg); err != nil {
			return nil, err
		}
		pw := dwell()
		recs = append(recs, sysid.Record{Freqs: []float64{s.CPUFreq(), s.GPUFreq(0)}, PowerW: pw})
	}
	// Sweep 2: CPU 1.0→2.1 at GPU 495 MHz.
	if _, err := s.SetGPUFreq(0, 495); err != nil {
		return nil, err
	}
	for fc := 1.0; fc <= 2.1+1e-9; fc += 0.1 {
		s.SetCPUFreq(fc)
		pw := dwell()
		recs = append(recs, sysid.Record{Freqs: []float64{s.CPUFreq(), s.GPUFreq(0)}, PowerW: pw})
	}

	m, err := sysid.Fit(recs)
	if err != nil {
		return nil, err
	}
	res.Model = m
	for _, r := range recs {
		res.Freqs = append(res.Freqs, r.Freqs)
		res.Measured = append(res.Measured, r.PowerW)
		pred, _ := m.Predict(r.Freqs)
		res.Predicted = append(res.Predicted, pred)
	}
	return res, nil
}

// Fig2bResult reproduces the latency-model figure: measured vs predicted
// inference latency under the γ-law. Model is the paper's law with γ
// fixed at 0.91 and e_min taken from the measurement at f_max (§4.2 sets
// γ empirically and reports the law's R² ≈ 0.91); FreeFit additionally
// reports the unconstrained log-log regression of internal/sysid.
type Fig2bResult struct {
	Workload  string
	Model     *sysid.LatencyModel
	FreeFit   *sysid.LatencyModel
	FreqsMHz  []float64
	Measured  []float64
	Predicted []float64 // under the fixed-γ Model
}

// Fig2bLatencyModel sweeps a GPU's clock, records observed (noisy,
// residual-bearing) batch latencies, and evaluates e = e_min(f_max/f)^γ
// with γ = 0.91. The paper reports R² ≈ 0.91 for this law.
func Fig2bLatencyModel(workloadName string, seed int64) (*Fig2bResult, error) {
	zoo := workload.Zoo()
	prof, ok := zoo[workloadName]
	if !ok {
		prof = zoo["resnet50"]
		workloadName = "resnet50"
	}
	p, err := workload.NewPipeline(workload.PipelineConfig{
		Model: prof, Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
		ArrivalRateMax: 300, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	res := &Fig2bResult{Workload: workloadName}
	for fg := 435.0; fg <= 1350; fg += 45 {
		// Average several observed batch latencies per level.
		sum := 0.0
		const reps = 8
		for r := 0; r < reps; r++ {
			st := p.Step(1, 2.4, fg)
			sum += st.GPUBatchLatencyS
		}
		res.FreqsMHz = append(res.FreqsMHz, fg)
		res.Measured = append(res.Measured, sum/reps)
	}
	// The paper's law: γ fixed at 0.91, e_min measured at f_max.
	eMin := res.Measured[len(res.Measured)-1] // last sweep point is f_max
	fixed := &sysid.LatencyModel{EMin: eMin, Gamma: 0.91, FMax: 1350}
	for _, f := range res.FreqsMHz {
		res.Predicted = append(res.Predicted, fixed.Predict(f))
	}
	fixed.R2 = mat.RSquared(res.Measured, res.Predicted)
	res.Model = fixed

	free, err := sysid.FitLatency(res.FreqsMHz, res.Measured, 1350)
	if err != nil {
		return nil, err
	}
	res.FreeFit = free
	return res, nil
}
