package experiments

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"strings"
	"testing"

	"repro/internal/controlplane"
	"repro/internal/flight"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

// daemonGoldenSpec is the kill/restore equivalence scenario: churn and
// reconfiguration on both sides of the restart period (20), including
// a drain whose ramp straddles it and a crash whose reservation decays
// across it, so replay has to reconstruct every kind of in-flight
// control-plane state.
func daemonGoldenSpec(workers int) controlplane.Spec {
	return controlplane.Spec{
		Seed: 7, Nodes: 3, BudgetW: 6000, RackPeriods: 2, Workers: workers,
		Schedule: "cap@2:n001*900;join@6:light;kill@8:n002;budget@12*5600;" +
			"drain@14:n001;slo@26:n000*0.5;join@30;revive@32:n002;cap@34:n000*1100",
		Load:            controlplane.LoadSpec{DiurnalAmp: 0.3, DiurnalPeriods: 80, BurstProb: 0.15, BurstAmp: 0.6},
		CheckpointEvery: 10,
		ReservationHold: 6,
	}
}

// daemonWorld is one daemon run's observability wiring.
type daemonWorld struct {
	hub     *telemetry.Hub
	events  *bytes.Buffer
	flights map[string]*bytes.Buffer
	traceB  *bytes.Buffer
	tracer  *provenance.Tracer
	deps    controlplane.Deps
}

func newDaemonWorld(seed int64) *daemonWorld {
	w := &daemonWorld{events: &bytes.Buffer{}, flights: map[string]*bytes.Buffer{}, traceB: &bytes.Buffer{}}
	w.hub = telemetry.New(telemetry.Config{JSONL: w.events})
	w.tracer = provenance.New(provenance.Config{JSONL: w.traceB})
	w.deps = NewDaemonDeps(seed, w.hub, func(node string) (io.Writer, error) {
		buf := &bytes.Buffer{}
		w.flights[node] = buf
		return buf, nil
	})
	w.deps.Tracer = w.tracer
	return w
}

// artifacts gathers the file-shaped channels: per-node CSV (live and
// released members alike, in name order), per-node flight JSONL, and
// the Prometheus exposition. The events JSONL is w.events, complete
// once this has called hub.Finish.
func (w *daemonWorld) artifacts(t *testing.T, d *controlplane.Daemon) (csv, flightLog, prom []byte) {
	t.Helper()
	if err := w.hub.Finish(); err != nil {
		t.Fatal(err)
	}
	recs := d.MemberRecords()
	names := make([]string, 0, len(recs))
	for name := range recs {
		names = append(names, name)
	}
	sort.Strings(names)
	var csvBuf bytes.Buffer
	for _, name := range names {
		fmt.Fprintf(&csvBuf, "# node %s\n", name)
		csvBuf.Write(replayTrace(t, recs[name]))
	}
	var flightBuf bytes.Buffer
	for _, name := range names {
		fmt.Fprintf(&flightBuf, "# %s\n", name)
		if buf := w.flights[name]; buf != nil {
			flightBuf.Write(buf.Bytes())
		}
	}
	var promBuf bytes.Buffer
	if err := w.hub.Registry().WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	return csvBuf.Bytes(), flightBuf.Bytes(), promBuf.Bytes()
}

// daemonArtifacts runs the golden scenario to 40 periods. With
// restart=true the run is killed at period 20: a checkpoint is taken
// through the wire format, the daemon and all its sinks are discarded,
// and a fresh daemon resumes into fresh sinks — whose artifacts must
// match an uninterrupted run byte for byte.
func daemonArtifacts(t *testing.T, workers int, restart bool) (csv, events, flightLog, prom, traceLog []byte) {
	t.Helper()
	const periods = 40
	spec := daemonGoldenSpec(workers)
	var d *controlplane.Daemon
	var w *daemonWorld
	if restart {
		w1 := newDaemonWorld(spec.Seed)
		d1, err := controlplane.New(spec, w1.deps)
		if err != nil {
			t.Fatal(err)
		}
		if err := d1.RunTo(20); err != nil {
			t.Fatal(err)
		}
		raw, err := d1.Checkpoint().Encode()
		if err != nil {
			t.Fatal(err)
		}
		// The old world dies with the process; restore gets only bytes.
		cp, err := controlplane.DecodeCheckpoint(raw)
		if err != nil {
			t.Fatal(err)
		}
		if err := cp.ValidateHorizon(periods); err != nil {
			t.Fatal(err)
		}
		w = newDaemonWorld(spec.Seed)
		d, err = controlplane.Resume(cp, w.deps)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		var err error
		w = newDaemonWorld(spec.Seed)
		d, err = controlplane.New(spec, w.deps)
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := d.RunTo(periods); err != nil {
		t.Fatal(err)
	}
	if err := d.FlightErr(); err != nil {
		t.Fatal(err)
	}
	if n, detail := d.InvariantViolations(); n != 0 {
		t.Fatalf("%d budget-invariant violations: %s", n, detail)
	}
	if err := w.tracer.Finish(periods - 1); err != nil {
		t.Fatal(err)
	}
	csv, flightLog, prom = w.artifacts(t, d)
	return csv, w.events.Bytes(), flightLog, prom, w.traceB.Bytes()
}

// TestDaemonKillRestoreEquivalence is the crash-recovery contract: a
// daemon killed at a checkpoint boundary and restored produces the
// exact bytes of an uninterrupted run — per-node CSV, events JSONL,
// per-node flight JSONL, and Prometheus exposition — at Workers=1 and
// Workers=8.
func TestDaemonKillRestoreEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, workers := range []int{1, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			refCSV, refEvents, refFlight, refProm, refTrace := daemonArtifacts(t, workers, false)
			if len(refCSV) == 0 || len(refEvents) == 0 || len(refFlight) == 0 || len(refTrace) == 0 {
				t.Fatal("reference run produced empty artifacts")
			}
			csv, events, flightLog, prom, traceLog := daemonArtifacts(t, workers, true)
			if !bytes.Equal(csv, refCSV) {
				t.Error("per-node CSV diverges from the uninterrupted run")
			}
			if !bytes.Equal(events, refEvents) {
				t.Errorf("events JSONL diverges (%d vs %d bytes)", len(events), len(refEvents))
			}
			if !bytes.Equal(flightLog, refFlight) {
				t.Errorf("flight JSONL diverges (%d vs %d bytes)", len(flightLog), len(refFlight))
			}
			if !bytes.Equal(prom, refProm) {
				t.Error("Prometheus exposition diverges")
			}
			if !bytes.Equal(traceLog, refTrace) {
				t.Errorf("provenance trace JSONL diverges across kill/restore (%d vs %d bytes)", len(traceLog), len(refTrace))
			}
			// The control-plane lifecycle actually ran: churn events and
			// the policy epoch are visible in telemetry.
			for _, want := range []string{
				string(telemetry.EventNodeJoined), string(telemetry.EventDrainStart),
				string(telemetry.EventNodeReleased), string(telemetry.EventPolicyApplied),
				string(telemetry.EventReservationReleased), string(telemetry.EventCheckpoint),
			} {
				if !bytes.Contains(events, []byte(want)) {
					t.Errorf("events JSONL missing %q", want)
				}
			}
			if !bytes.Contains(prom, []byte("capgpu_policy_epoch")) {
				t.Error("Prometheus exposition missing capgpu_policy_epoch")
			}
			// Workers=1 and Workers=8 share one timeline too — the
			// provenance trace included.
			if workers == 8 {
				w1CSV, w1Events, _, _, w1Trace := daemonArtifacts(t, 1, false)
				if !bytes.Equal(w1CSV, refCSV) || !bytes.Equal(w1Events, refEvents) {
					t.Error("worker counts disagree on the daemon timeline")
				}
				if !bytes.Equal(w1Trace, refTrace) {
					t.Error("worker counts disagree on the provenance trace")
				}
			}
		})
	}
}

// TestDaemonSoak runs the deterministic soak harness: a simulated
// day's diurnal+bursty load over the churn schedule (joins, drains,
// crashes, hot reconfigurations), then gates on the acceptance
// invariants and on capgpu-doctor explaining every incident on every
// node's flight record.
func TestDaemonSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	// A compressed day: the full 21600-period day runs in `make soak`;
	// here the diurnal cycle is compressed onto the test horizon so the
	// same trough→peak→trough shape is exercised.
	const periods = 2000
	const nodes = 6
	// Budget sized for the churn peak: up to 9 members (6 initial + 3
	// joins) must keep their floors admissible through the schedule's
	// 8% budget dip.
	const budgetW = 8 * DefaultNodeBudgetW
	sched, err := controlplane.SoakSchedule(periods, nodes, budgetW)
	if err != nil {
		t.Fatal(err)
	}
	spec := controlplane.Spec{
		Seed: 11, Nodes: nodes, BudgetW: budgetW, RackPeriods: 2, Workers: 4,
		Schedule:        sched,
		Load:            controlplane.LoadSpec{DiurnalAmp: 0.35, DiurnalPeriods: periods, BurstProb: 0.1, BurstAmp: 0.8},
		CheckpointEvery: 500,
	}
	w := newDaemonWorld(spec.Seed)
	d, err := controlplane.New(spec, w.deps)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.RunTo(periods); err != nil {
		t.Fatal(err)
	}
	if err := w.hub.Finish(); err != nil {
		t.Fatal(err)
	}
	if err := w.tracer.Finish(periods - 1); err != nil {
		t.Fatal(err)
	}
	if err := d.FlightErr(); err != nil {
		t.Fatal(err)
	}

	// Acceptance floor: the budget invariant held every period, and the
	// churn/reconfig counts were actually applied, not rejected.
	if n, detail := d.InvariantViolations(); n != 0 {
		t.Fatalf("%d budget-invariant violations: %s", n, detail)
	}
	applied := map[controlplane.OpKind]int{}
	for _, op := range d.OpLog() {
		if op.Applied {
			applied[op.Op.Kind]++
		} else {
			t.Errorf("soak op rejected: %+v", op)
		}
	}
	if applied[controlplane.OpJoin] < 3 || applied[controlplane.OpDrain] < 3 || applied[controlplane.OpKill] < 2 {
		t.Fatalf("churn counts too low: %v", applied)
	}
	if n := applied[controlplane.OpBudget] + applied[controlplane.OpCap] + applied[controlplane.OpSLO]; n < 5 {
		t.Fatalf("only %d hot reconfigurations applied", n)
	}
	if len(d.Released()) < 3 {
		t.Fatalf("only %d nodes drained to release", len(d.Released()))
	}

	// The policy epoch is visible end to end.
	if d.Epoch() < 5 {
		t.Fatalf("policy epoch %d after ≥5 reconfigurations", d.Epoch())
	}
	var promBuf bytes.Buffer
	if err := w.hub.Registry().WritePrometheus(&promBuf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(promBuf.String(), fmt.Sprintf(`capgpu_policy_epoch{node="rack"} %d`, d.Epoch())) {
		t.Fatal("Prometheus capgpu_policy_epoch does not show the final epoch")
	}

	// Doctor gate: every incident on every member's flight record —
	// live or released — must be explained (exit code 0), with the
	// node's own events (plus rack-scope events) as context.
	events, err := telemetry.ReadEvents(bytes.NewReader(w.events.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	checked := 0
	flightRecs := map[string][]flight.DecisionRecord{}
	for name, buf := range w.flights {
		recs, err := flight.ReadRecords(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(recs) == 0 {
			continue
		}
		flightRecs[name] = recs
		var nodeEvents []telemetry.Event
		for _, ev := range events {
			if ev.Node == name || ev.Node == "rack" {
				nodeEvents = append(nodeEvents, ev)
			}
		}
		report, err := flight.Diagnose(flight.DoctorInput{Records: recs, Events: nodeEvents})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if report.ExitCode() != 0 {
			for _, inc := range report.Incidents {
				if !inc.Explained {
					t.Errorf("%s: unexplained %s incident periods %d-%d: %s",
						name, inc.Kind, inc.StartPeriod, inc.EndPeriod, inc.Detail)
				}
			}
			t.Fatalf("%s: doctor exit %d (%d unexplained)", name, report.ExitCode(), report.Unexplained)
		}
		// Epoch stamping reached the flight stream.
		if last := recs[len(recs)-1]; last.PolicyEpoch == 0 {
			t.Errorf("%s: final flight record carries no policy epoch", name)
		}
		checked++
	}
	if checked < nodes {
		t.Fatalf("doctor checked only %d members", checked)
	}

	// Provenance gate: every cap change on every member traces back to
	// a cap-change span whose period, node, and parent agree with the
	// flight record — zero unattributed changes across the whole soak.
	ptr, err := provenance.LoadTrace(bytes.NewReader(w.traceB.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	capChanges := 0
	for name, recs := range flightRecs {
		for _, p := range ptr.VerifyAttribution(name, recs, provenance.DefaultEpsilonW) {
			t.Errorf("unattributed: %s", p)
		}
		for i := 1; i < len(recs); i++ {
			if d := recs[i].SetpointW - recs[i-1].SetpointW; d >= provenance.DefaultEpsilonW || -d >= provenance.DefaultEpsilonW {
				capChanges++
			}
		}
	}
	if capChanges == 0 {
		t.Fatal("soak produced no cap changes to attribute")
	}
	rows := ptr.Attribution(flightRecs, 4)
	if len(rows) < 3 {
		t.Fatalf("attribution table has only %d root-cause classes: %+v", len(rows), rows)
	}
}
