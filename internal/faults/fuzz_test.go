package faults

import (
	"math"
	"strings"
	"testing"
)

// FuzzParse hammers the DSL parser with arbitrary input: it must never
// panic, and every schedule it accepts must be well-formed — finite
// magnitudes, non-wrapping windows, a round trip through Fault.String
// that re-parses to the same fault, and query methods that are total
// over a sample of periods.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"meter-dropout@20+10",
		"meter-dropout@20+10;actuator-loss@40+6:gpu1;gpu-derate@50+20:gpu0*0.6",
		"meter-spike@40+4*250",
		"server-dropout@6+8:node1;server-dropout@16+1:node2",
		"meter-stuck@25+4:all",
		"actuator-loss@1+2:cpu*0.5",
		"gpu-fail@3+9:gpu2",
		"meter-spike@0+1*-250.5",
		"  meter-dropout@0+1 ; ",
		"",
		";",
		"@+",
		"meter-dropout@-1+5",
		"meter-dropout@5+0",
		"meter-spike@1+1*NaN",
		"meter-spike@1+1*+Inf",
		"meter-dropout@9223372036854775806+5",
		"bogus-kind@1+1",
		"meter-dropout@1+1:node-3",
		"actuator-loss@1+1:gpu99999999999999999999",
		"meter-dropout@1+1:gpu*2",
		"a@b+c:d*e",
		strings.Repeat("meter-dropout@1+1;", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, dsl string) {
		s, err := Parse(dsl, 7)
		if err != nil {
			return
		}
		for _, flt := range s.Faults {
			if math.IsNaN(flt.Magnitude) || math.IsInf(flt.Magnitude, 0) {
				t.Fatalf("accepted non-finite magnitude: %+v", flt)
			}
			if flt.End() < flt.Start {
				t.Fatalf("window wraps: %+v", flt)
			}
			// Round trip: the canonical rendering must re-parse to the
			// identical fault.
			back, err := parseEntry(flt.String())
			if err != nil {
				t.Fatalf("%v does not re-parse: %v", flt.String(), err)
			}
			if back != flt {
				t.Fatalf("round trip changed %+v into %+v", flt, back)
			}
		}
		// Query methods must be total on accepted schedules.
		for _, k := range []int{0, 1, s.Faults[0].Start, s.Faults[0].End() - 1} {
			s.ActiveAt(k)
			s.MeterFaultAt(k)
			s.SpikeSample(k, 4)
			for dev := -1; dev < 4; dev++ {
				s.ActuatorLostAt(k, dev, 0)
				s.GPUDerateAt(k, dev)
				s.GPUFailedAt(k, dev)
				s.ServerDownAt(k, dev)
			}
		}
	})
}
