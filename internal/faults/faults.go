// Package faults is the deterministic fault-injection subsystem: a
// seeded per-period Schedule of failures spanning the three layers of
// the capping stack — the measurement plane (power-meter dropout,
// stuck-at-last-value, spike readings), the actuation plane (command
// loss, GPU derating and outright GPU failure), and the rack plane
// (coordinator losing a server's heartbeat). Consumers query the
// schedule by control-period index; every stochastic choice (which 1 s
// sample a spike lands on, whether a retried actuator command is lost
// again) is derived from a stateless hash of (seed, period, target,
// attempt), so two runs with the same Schedule produce bit-identical
// fault streams regardless of query order.
//
// Scenarios are written in a compact DSL, one entry per fault:
//
//	kind@start+duration[:target][*magnitude]
//
// joined by ';'. Kinds: meter-dropout, meter-stuck, meter-spike,
// actuator-loss, gpu-derate, gpu-fail, server-dropout. Targets name a
// device ("cpu", "gpu0", "node2", or "all"); magnitude is kind-specific
// (spike amplitude in Watts, actuator loss probability, derated
// fraction of the GPU's maximum clock). Example:
//
//	meter-dropout@20+10;actuator-loss@40+6:gpu1;gpu-derate@50+20:gpu0*0.6
package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the injectable failure modes.
type Kind int

const (
	// MeterDropout loses every meter sample in the period.
	MeterDropout Kind = iota
	// MeterStuck makes the meter repeat its last recorded value.
	MeterStuck
	// MeterSpike corrupts one 1 s sample per period by ±Magnitude Watts.
	MeterSpike
	// ActuatorLoss drops frequency commands to the target knob
	// (0 = CPU, 1.. = GPUs) with probability Magnitude (default 1).
	ActuatorLoss
	// GPUDerate clamps the target GPU's honored clock to Magnitude ×
	// f_max (thermal/driver derating; default 0.6).
	GPUDerate
	// GPUFail takes the target GPU offline: its pipeline stops serving
	// and its clock pins to f_min; commands to it are ignored.
	GPUFail
	// ServerDropout makes the target rack node miss coordinator
	// heartbeats (its local loop stops; power draw continues).
	ServerDropout
)

var kindNames = map[Kind]string{
	MeterDropout:  "meter-dropout",
	MeterStuck:    "meter-stuck",
	MeterSpike:    "meter-spike",
	ActuatorLoss:  "actuator-loss",
	GPUDerate:     "gpu-derate",
	GPUFail:       "gpu-fail",
	ServerDropout: "server-dropout",
}

// String returns the DSL name of the kind.
func (k Kind) String() string {
	n, ok := kindNames[k]
	if !ok {
		// Only hand-built schedules with bogus kinds land here, so the
		// format cost stays off the happy path.
		return fmt.Sprintf("kind(%d)", int(k))
	}
	return n
}

// Default magnitudes per kind (used when a DSL entry omits '*mag').
const (
	DefaultSpikeW     = 250.0
	DefaultLossProb   = 1.0
	DefaultDerateFrac = 0.6
	// TargetAll targets every eligible device.
	TargetAll = -1
)

// Fault is one scheduled failure window, in control-period units.
type Fault struct {
	Kind      Kind
	Start     int     // first affected period
	Duration  int     // number of periods
	Target    int     // device/GPU/node index; TargetAll = every one
	Magnitude float64 // kind-specific; 0 = kind default
}

// ActiveAt reports whether the fault covers period k.
func (f Fault) ActiveAt(k int) bool {
	return k >= f.Start && k < f.Start+f.Duration
}

// End returns the first period after the fault window.
func (f Fault) End() int { return f.Start + f.Duration }

// magnitude resolves the kind default.
func (f Fault) magnitude() float64 {
	if f.Magnitude != 0 {
		return f.Magnitude
	}
	switch f.Kind {
	case MeterSpike:
		return DefaultSpikeW
	case ActuatorLoss:
		return DefaultLossProb
	case GPUDerate:
		return DefaultDerateFrac
	}
	return 0
}

// String renders the fault in DSL form. Built with appends rather than
// fmt because flight records stringify every active fault each period.
func (f Fault) String() string {
	b := make([]byte, 0, 48)
	b = append(b, f.Kind.String()...)
	b = append(b, '@')
	b = strconv.AppendInt(b, int64(f.Start), 10)
	b = append(b, '+')
	b = strconv.AppendInt(b, int64(f.Duration), 10)
	if f.Target != TargetAll {
		switch f.Kind {
		case ActuatorLoss:
			if f.Target == 0 {
				b = append(b, ":cpu"...)
			} else {
				b = append(b, ":gpu"...)
				b = strconv.AppendInt(b, int64(f.Target-1), 10)
			}
		case GPUDerate, GPUFail:
			b = append(b, ":gpu"...)
			b = strconv.AppendInt(b, int64(f.Target), 10)
		case ServerDropout:
			b = append(b, ":node"...)
			b = strconv.AppendInt(b, int64(f.Target), 10)
		default:
			b = append(b, ':')
			b = strconv.AppendInt(b, int64(f.Target), 10)
		}
	}
	if f.Magnitude != 0 {
		b = append(b, '*')
		b = strconv.AppendFloat(b, f.Magnitude, 'g', -1, 64)
	}
	return string(b)
}

// Schedule is a seeded set of fault windows.
type Schedule struct {
	Seed   int64
	Faults []Fault
}

// New builds a schedule from explicit faults.
func New(seed int64, fs ...Fault) *Schedule {
	return &Schedule{Seed: seed, Faults: fs}
}

// Parse builds a schedule from the DSL described in the package comment.
func Parse(dsl string, seed int64) (*Schedule, error) {
	s := &Schedule{Seed: seed}
	for _, entry := range strings.Split(dsl, ";") {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		f, err := parseEntry(entry)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	if len(s.Faults) == 0 {
		return nil, fmt.Errorf("faults: empty schedule %q", dsl)
	}
	return s, nil
}

func parseEntry(entry string) (Fault, error) {
	f := Fault{Target: TargetAll}
	rest := entry
	// Split off '*magnitude' then ':target' then 'kind@start+duration'.
	if i := strings.LastIndexByte(rest, '*'); i >= 0 {
		mag, err := strconv.ParseFloat(rest[i+1:], 64)
		if err != nil {
			return f, fmt.Errorf("faults: %q: bad magnitude: %w", entry, err)
		}
		// NaN/Inf magnitudes would poison every downstream comparison
		// (a NaN spike delta walks into the meter stream; found by the
		// parser fuzz target).
		if math.IsNaN(mag) || math.IsInf(mag, 0) {
			return f, fmt.Errorf("faults: %q: magnitude must be finite", entry)
		}
		f.Magnitude = mag
		rest = rest[:i]
	}
	if i := strings.IndexByte(rest, ':'); i >= 0 {
		tgt := rest[i+1:]
		rest = rest[:i]
		kindName := rest[:strings.IndexByte(rest+"@", '@')]
		t, err := parseTarget(kindName, tgt)
		if err != nil {
			return f, fmt.Errorf("faults: %q: %w", entry, err)
		}
		f.Target = t
	}
	at := strings.IndexByte(rest, '@')
	plus := strings.LastIndexByte(rest, '+')
	if at < 0 || plus < at {
		return f, fmt.Errorf("faults: %q: want kind@start+duration", entry)
	}
	kind, ok := kindFromName(rest[:at])
	if !ok {
		return f, fmt.Errorf("faults: %q: unknown kind %q (want one of %s)", entry, rest[:at], KindNames())
	}
	f.Kind = kind
	start, err := strconv.Atoi(rest[at+1 : plus])
	if err != nil || start < 0 {
		return f, fmt.Errorf("faults: %q: bad start period", entry)
	}
	dur, err := strconv.Atoi(rest[plus+1:])
	if err != nil || dur <= 0 {
		return f, fmt.Errorf("faults: %q: bad duration", entry)
	}
	// Guard Start+Duration against int overflow: a wrapped End() would
	// make ActiveAt silently false for the whole window (found by the
	// parser fuzz target).
	if start > math.MaxInt-dur {
		return f, fmt.Errorf("faults: %q: start+duration overflows", entry)
	}
	f.Start, f.Duration = start, dur
	return f, nil
}

func parseTarget(kind, tgt string) (int, error) {
	tgt = strings.TrimSpace(strings.ToLower(tgt))
	switch {
	case tgt == "all":
		return TargetAll, nil
	case tgt == "cpu":
		return 0, nil // knob index 0 (ActuatorLoss layout)
	case strings.HasPrefix(tgt, "gpu"):
		n, err := strconv.Atoi(tgt[3:])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad GPU target %q", tgt)
		}
		if k, _ := kindFromName(kind); k == ActuatorLoss {
			return n + 1, nil // knob layout: 0 = CPU, 1.. = GPUs
		}
		return n, nil
	case strings.HasPrefix(tgt, "node"):
		n, err := strconv.Atoi(tgt[4:])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("bad node target %q", tgt)
		}
		return n, nil
	default:
		n, err := strconv.Atoi(tgt)
		if err != nil {
			return 0, fmt.Errorf("bad target %q", tgt)
		}
		return n, nil
	}
}

func kindFromName(name string) (Kind, bool) {
	for k, n := range kindNames {
		if n == name {
			return k, true
		}
	}
	return 0, false
}

// KindNames lists the DSL kind names in schedule-layer order.
func KindNames() string {
	return "meter-dropout, meter-stuck, meter-spike, actuator-loss, gpu-derate, gpu-fail, server-dropout"
}

// String renders the whole schedule in DSL form (round-trips Parse).
func (s *Schedule) String() string {
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// Empty reports whether the schedule injects nothing.
func (s *Schedule) Empty() bool { return s == nil || len(s.Faults) == 0 }

// ActiveAt returns every fault covering period k (for record
// annotation). Fault-free periods — the common case — return nil
// without allocating; active ones get an exactly-sized slice.
func (s *Schedule) ActiveAt(k int) []Fault {
	if s == nil {
		return nil
	}
	n := 0
	for _, f := range s.Faults {
		if f.ActiveAt(k) {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make([]Fault, 0, n)
	for _, f := range s.Faults {
		if f.ActiveAt(k) {
			out = append(out, f)
		}
	}
	return out
}

// MeterFaultAt returns the first active measurement-plane fault at
// period k, if any.
func (s *Schedule) MeterFaultAt(k int) (Fault, bool) {
	if s == nil {
		return Fault{}, false
	}
	for _, f := range s.Faults {
		if f.ActiveAt(k) && (f.Kind == MeterDropout || f.Kind == MeterStuck || f.Kind == MeterSpike) {
			return f, true
		}
	}
	return Fault{}, false
}

// SpikeSample returns, for an active MeterSpike at period k, the index
// of the corrupted sample within the period's nSamples readings and the
// signed spike amplitude in Watts.
func (s *Schedule) SpikeSample(k, nSamples int) (idx int, deltaW float64, ok bool) {
	f, have := s.MeterFaultAt(k)
	if !have || f.Kind != MeterSpike || nSamples <= 0 {
		return 0, 0, false
	}
	h := s.hash(int64(k), 0x5b1ce)
	idx = int(h % uint64(nSamples))
	deltaW = f.magnitude()
	if (h>>32)&1 == 1 {
		deltaW = -deltaW
	}
	return idx, deltaW, true
}

// ActuatorLostAt reports whether the attempt-th delivery of period k's
// frequency command to knob dev (0 = CPU, 1.. = GPUs) is lost.
func (s *Schedule) ActuatorLostAt(k, dev, attempt int) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind != ActuatorLoss || !f.ActiveAt(k) {
			continue
		}
		if f.Target != TargetAll && f.Target != dev {
			continue
		}
		p := f.magnitude()
		if p >= 1 {
			return true
		}
		if s.rand01(int64(k), int64(dev), int64(attempt), 0xac7) < p {
			return true
		}
	}
	return false
}

// GPUDerateAt returns the derated fraction of f_max honored for GPU g
// at period k (the tightest if several overlap).
func (s *Schedule) GPUDerateAt(k, g int) (frac float64, ok bool) {
	if s == nil {
		return 0, false
	}
	for _, f := range s.Faults {
		if f.Kind != GPUDerate || !f.ActiveAt(k) {
			continue
		}
		if f.Target != TargetAll && f.Target != g {
			continue
		}
		m := f.magnitude()
		if !ok || m < frac {
			frac, ok = m, true
		}
	}
	return frac, ok
}

// GPUFailedAt reports whether GPU g is offline at period k.
func (s *Schedule) GPUFailedAt(k, g int) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind == GPUFail && f.ActiveAt(k) && (f.Target == TargetAll || f.Target == g) {
			return true
		}
	}
	return false
}

// ServerDownAt reports whether rack node n misses its heartbeat at
// period k.
func (s *Schedule) ServerDownAt(k, n int) bool {
	if s == nil {
		return false
	}
	for _, f := range s.Faults {
		if f.Kind == ServerDropout && f.ActiveAt(k) && (f.Target == TargetAll || f.Target == n) {
			return true
		}
	}
	return false
}

// hash is a stateless splitmix64 over the seed and the given parts, so
// schedule queries are order-independent and reproducible.
func (s *Schedule) hash(parts ...int64) uint64 {
	x := uint64(s.Seed)*0x9e3779b97f4a7c15 + 0x2545f4914f6cdd1d
	for _, p := range parts {
		x ^= uint64(p) + 0x9e3779b97f4a7c15 + (x << 6) + (x >> 2)
		x = splitmix64(x)
	}
	return x
}

// rand01 maps a hash to [0, 1).
func (s *Schedule) rand01(parts ...int64) float64 {
	return float64(s.hash(parts...)>>11) / (1 << 53)
}

func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
