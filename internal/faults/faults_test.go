package faults

import (
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	dsl := "meter-dropout@20+10;meter-spike@30+5*250;actuator-loss@40+6:gpu1;gpu-derate@50+20:gpu0*0.6;gpu-fail@60+8:gpu2;server-dropout@5+4:node1;meter-stuck@70+3"
	s, err := Parse(dsl, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 7 {
		t.Fatalf("parsed %d faults, want 7", len(s.Faults))
	}
	back, err := Parse(s.String(), 7)
	if err != nil {
		t.Fatalf("round trip: %v (dsl %q)", err, s.String())
	}
	if back.String() != s.String() {
		t.Fatalf("round trip mismatch: %q vs %q", back.String(), s.String())
	}
	// actuator-loss:gpu1 maps to knob index 2 (0 = CPU).
	if s.Faults[2].Target != 2 {
		t.Fatalf("actuator-loss gpu1 target = %d, want knob 2", s.Faults[2].Target)
	}
	if s.Faults[3].Target != 0 || s.Faults[3].Magnitude != 0.6 {
		t.Fatalf("gpu-derate parsed as %+v", s.Faults[3])
	}
}

func TestParseErrors(t *testing.T) {
	for _, bad := range []string{
		"", "bogus@1+2", "meter-dropout@+2", "meter-dropout@1",
		"meter-dropout@1+0", "meter-spike@1+2*x", "gpu-fail@1+2:gpux",
	} {
		if _, err := Parse(bad, 1); err == nil {
			t.Errorf("Parse(%q) accepted", bad)
		}
	}
}

func TestWindows(t *testing.T) {
	s := New(1, Fault{Kind: MeterDropout, Start: 10, Duration: 5})
	for k, want := range map[int]bool{9: false, 10: true, 14: true, 15: false} {
		if _, got := s.MeterFaultAt(k); got != want {
			t.Errorf("MeterFaultAt(%d) = %v, want %v", k, got, want)
		}
	}
	if len(s.ActiveAt(12)) != 1 || len(s.ActiveAt(20)) != 0 {
		t.Fatal("ActiveAt window wrong")
	}
}

func TestTargeting(t *testing.T) {
	s := New(1,
		Fault{Kind: GPUFail, Start: 0, Duration: 2, Target: 1},
		Fault{Kind: ActuatorLoss, Start: 0, Duration: 2, Target: TargetAll},
		Fault{Kind: ServerDropout, Start: 0, Duration: 2, Target: 0},
	)
	if s.GPUFailedAt(0, 0) || !s.GPUFailedAt(0, 1) {
		t.Fatal("GPUFailedAt targeting wrong")
	}
	if !s.ActuatorLostAt(1, 0, 0) || !s.ActuatorLostAt(1, 2, 1) {
		t.Fatal("ActuatorLoss all-targets with default prob=1 should always drop")
	}
	if !s.ServerDownAt(0, 0) || s.ServerDownAt(0, 1) {
		t.Fatal("ServerDownAt targeting wrong")
	}
	if s.ServerDownAt(3, 0) {
		t.Fatal("ServerDownAt outside window")
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Schedule {
		return New(42,
			Fault{Kind: MeterSpike, Start: 0, Duration: 50},
			Fault{Kind: ActuatorLoss, Start: 0, Duration: 50, Target: TargetAll, Magnitude: 0.5},
		)
	}
	a, b := mk(), mk()
	drops := 0
	for k := 0; k < 50; k++ {
		ia, da, _ := a.SpikeSample(k, 4)
		ib, db, _ := b.SpikeSample(k, 4)
		if ia != ib || da != db {
			t.Fatalf("period %d: spike (%d, %g) vs (%d, %g)", k, ia, da, ib, db)
		}
		if ia < 0 || ia >= 4 {
			t.Fatalf("spike index %d out of range", ia)
		}
		for dev := 0; dev < 4; dev++ {
			for att := 0; att < 3; att++ {
				la := a.ActuatorLostAt(k, dev, att)
				if la != b.ActuatorLostAt(k, dev, att) {
					t.Fatalf("loss divergence at k=%d dev=%d att=%d", k, dev, att)
				}
				if la {
					drops++
				}
			}
		}
	}
	// prob 0.5 over 600 draws: expect a healthy mix, not all-or-nothing.
	if drops < 150 || drops > 450 {
		t.Fatalf("prob-0.5 loss dropped %d of 600 attempts", drops)
	}
	// A different seed must decorrelate the stream.
	c := New(43, Fault{Kind: ActuatorLoss, Start: 0, Duration: 50, Target: TargetAll, Magnitude: 0.5})
	same := 0
	for k := 0; k < 50; k++ {
		if a.ActuatorLostAt(k, 0, 0) == c.ActuatorLostAt(k, 0, 0) {
			same++
		}
	}
	if same == 50 {
		t.Fatal("seed change did not alter the loss stream")
	}
}

func TestKindNamesListed(t *testing.T) {
	for _, k := range []Kind{MeterDropout, MeterStuck, MeterSpike, ActuatorLoss, GPUDerate, GPUFail, ServerDropout} {
		if !strings.Contains(KindNames(), k.String()) {
			t.Errorf("KindNames() missing %s", k)
		}
	}
}
