package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/workload"
)

func testbed(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer(DefaultTestbed(1))
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// attachStandardWorkloads wires the §6.1 workloads: ResNet50, Swin-T and
// VGG16 pipelines on GPUs 0..2 plus feature selection on the CPU.
func attachStandardWorkloads(t *testing.T, s *Server) {
	t.Helper()
	zoo := workload.Zoo()
	cfgs := []workload.PipelineConfig{
		{Model: zoo["resnet50"], Workers: 1, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
			ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: 11},
		{Model: zoo["swin_t"], Workers: 1, PreLatencyBase: 0.010, PreLatencyExp: 0.4,
			ArrivalRateMax: 100, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: 12},
		{Model: zoo["vgg16"], Workers: 1, PreLatencyBase: 0.008, PreLatencyExp: 0.4,
			ArrivalRateMax: 130, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: 13},
	}
	for i, cfg := range cfgs {
		p, err := workload.NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AttachPipeline(i, p); err != nil {
			t.Fatal(err)
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
		RateAtMax: 40, FcMax: 2.4, NoiseStd: 0.02, Seed: 14})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCPUWorkload(w)
}

func TestNewServerValidation(t *testing.T) {
	bad := DefaultTestbed(1)
	bad.CPU.FreqMaxGHz = bad.CPU.FreqMinGHz
	if _, err := NewServer(bad); err == nil {
		t.Fatal("expected CPU range error")
	}
	bad = DefaultTestbed(1)
	bad.GPUs = nil
	if _, err := NewServer(bad); err == nil {
		t.Fatal("expected no-GPU error")
	}
	bad = DefaultTestbed(1)
	bad.GPUs[1].FreqMinMHz = 0
	if _, err := NewServer(bad); err == nil {
		t.Fatal("expected GPU range error")
	}
}

func TestInitialStateMinFrequencies(t *testing.T) {
	s := testbed(t)
	if s.CPUFreq() != s.Config().CPU.FreqMinGHz {
		t.Fatalf("initial CPU freq %g, want min %g", s.CPUFreq(), s.Config().CPU.FreqMinGHz)
	}
	for i := 0; i < s.NumGPUs(); i++ {
		if s.GPUFreq(i) != s.Config().GPUs[i].FreqMinMHz {
			t.Fatalf("GPU %d initial freq %g, want min", i, s.GPUFreq(i))
		}
	}
}

func TestFrequencySnapping(t *testing.T) {
	s := testbed(t)
	// 1.234 GHz snaps onto the 0.1 GHz grid from 1.0.
	if got := s.SetCPUFreq(1.234); math.Abs(got-1.2) > 1e-12 {
		t.Fatalf("snap 1.234 -> %g, want 1.2", got)
	}
	if got := s.SetCPUFreq(99); got != 2.4 {
		t.Fatalf("over-max snap -> %g, want 2.4", got)
	}
	if got := s.SetCPUFreq(0.1); got != 1.0 {
		t.Fatalf("under-min snap -> %g, want 1.0", got)
	}
	got, err := s.SetGPUFreq(0, 500)
	if err != nil {
		t.Fatal(err)
	}
	// Grid is 435 + k*15: 495 is on-grid.
	if got != 495 {
		t.Fatalf("snap 500 -> %g, want 495", got)
	}
	if _, err := s.SetGPUFreq(9, 500); err == nil {
		t.Fatal("expected index error")
	}
}

func TestPowerMonotoneInFrequency(t *testing.T) {
	s := testbed(t)
	attachStandardWorkloads(t, s)
	run := func(fc, fg float64) float64 {
		s.SetCPUFreq(fc)
		for i := 0; i < s.NumGPUs(); i++ {
			if _, err := s.SetGPUFreq(i, fg); err != nil {
				t.Fatal(err)
			}
		}
		sum := 0.0
		for k := 0; k < 30; k++ {
			sum += s.Tick(1).TruePowerW
		}
		return sum / 30
	}
	low := run(1.0, 435)
	mid := run(1.7, 900)
	high := run(2.4, 1350)
	if !(low < mid && mid < high) {
		t.Fatalf("power not monotone: %g, %g, %g", low, mid, high)
	}
}

func TestPowerRangeCoversPaperSetpoints(t *testing.T) {
	s := testbed(t)
	lo, hi := s.PowerRange()
	if lo >= 800 {
		t.Fatalf("min power %g too high for the 800 W set point", lo)
	}
	if hi <= 1200 {
		t.Fatalf("max power %g too low for the 1200 W set point", hi)
	}
}

func TestMeasurementNoisePresentButBounded(t *testing.T) {
	s := testbed(t)
	attachStandardWorkloads(t, s)
	s.SetCPUFreq(2.0)
	var devSum, devMax float64
	n := 300
	for i := 0; i < n; i++ {
		smp := s.Tick(1)
		d := math.Abs(smp.MeasuredW - smp.TruePowerW)
		devSum += d
		if d > devMax {
			devMax = d
		}
	}
	if devSum == 0 {
		t.Fatal("no measurement noise present")
	}
	if devMax > 6*s.Config().MeasNoiseW {
		t.Fatalf("noise excursion %g implausibly large", devMax)
	}
}

func TestPerDevicePowerSumsToTotal(t *testing.T) {
	s := testbed(t)
	attachStandardWorkloads(t, s)
	s.SetCPUFreq(1.8)
	smp := s.Tick(1)
	sum := smp.CPUPowerW + s.Config().OtherW + smp.DriftW
	for _, g := range smp.GPUPowerW {
		sum += g
	}
	if math.Abs(sum-smp.TruePowerW) > 1e-9 {
		t.Fatalf("device sum %g != total %g", sum, smp.TruePowerW)
	}
}

func TestTickAdvancesClockAndStats(t *testing.T) {
	s := testbed(t)
	attachStandardWorkloads(t, s)
	if s.Now() != 0 {
		t.Fatalf("initial time %g", s.Now())
	}
	smp := s.Tick(1)
	if s.Now() != 1 || smp.TimeS != 1 {
		t.Fatalf("time after tick: %g / %g", s.Now(), smp.TimeS)
	}
	if smp.GPUStats[0].Throughput <= 0 {
		t.Fatal("pipeline produced no throughput")
	}
	if smp.CPUStats.Throughput <= 0 {
		t.Fatal("CPU workload produced no throughput")
	}
	again := s.Tick(0)
	if again.TimeS != smp.TimeS || again.TruePowerW != smp.TruePowerW {
		t.Fatal("zero-dt tick should return last sample")
	}
}

func TestHigherUtilizationRaisesPower(t *testing.T) {
	// Same frequencies, with vs without workloads: power must be higher
	// with busy devices.
	idle := testbed(t)
	busy := testbed(t)
	attachStandardWorkloads(t, busy)
	for _, s := range []*Server{idle, busy} {
		s.SetCPUFreq(2.0)
		for i := 0; i < s.NumGPUs(); i++ {
			if _, err := s.SetGPUFreq(i, 1200); err != nil {
				t.Fatal(err)
			}
		}
	}
	var pi, pb float64
	for k := 0; k < 20; k++ {
		pi = idle.Tick(1).TruePowerW
		pb = busy.Tick(1).TruePowerW
	}
	if pb <= pi {
		t.Fatalf("busy power %g should exceed idle power %g", pb, pi)
	}
}

func TestResetWorkloadsReproducible(t *testing.T) {
	s := testbed(t)
	attachStandardWorkloads(t, s)
	s.SetCPUFreq(1.9)
	seq := make([]float64, 10)
	for i := range seq {
		seq[i] = s.Tick(1).MeasuredW
	}
	s.ResetWorkloads()
	for i := range seq {
		if got := s.Tick(1).MeasuredW; got != seq[i] {
			t.Fatalf("tick %d after reset: %g, want %g", i, got, seq[i])
		}
	}
}

func TestAttachPipelineErrors(t *testing.T) {
	s := testbed(t)
	if err := s.AttachPipeline(-1, nil); err == nil {
		t.Fatal("expected index error")
	}
	if err := s.AttachPipeline(3, nil); err == nil {
		t.Fatal("expected index error")
	}
	if s.Pipeline(7) != nil {
		t.Fatal("out-of-range Pipeline() should be nil")
	}
}

func TestMotivationTestbedRanges(t *testing.T) {
	s, err := NewServer(MotivationTestbed(3))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumGPUs() != 1 {
		t.Fatalf("motivation rig has %d GPUs", s.NumGPUs())
	}
	if got := s.SetCPUFreq(1.6); math.Abs(got-1.6) > 1e-9 {
		t.Fatalf("1.6 GHz should be a valid level, got %g", got)
	}
	got, err := s.SetGPUFreq(0, 660)
	if err != nil {
		t.Fatal(err)
	}
	if got != 660 {
		t.Fatalf("660 MHz should be a valid level, got %g", got)
	}
}

// Property: snapped frequencies always respect the device limits and lie
// on the discrete grid.
func TestQuickSnapInvariants(t *testing.T) {
	s := testbed(t)
	cpu := s.Config().CPU
	f := func(raw float64) bool {
		if math.IsNaN(raw) || math.IsInf(raw, 0) {
			return true
		}
		got := s.SetCPUFreq(raw)
		if got < cpu.FreqMinGHz-1e-12 || got > cpu.FreqMaxGHz+1e-12 {
			return false
		}
		steps := (got - cpu.FreqMinGHz) / cpu.FreqStepGHz
		return math.Abs(steps-math.Round(steps)) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: power is always positive and finite across the whole
// actuation envelope.
func TestQuickPowerFinite(t *testing.T) {
	s := testbed(t)
	attachStandardWorkloads(t, s)
	f := func(a, b, c, d uint8) bool {
		s.SetCPUFreq(1.0 + 1.4*float64(a)/255)
		gs := []float64{float64(b), float64(c), float64(d)}
		for i := range gs {
			if _, err := s.SetGPUFreq(i, 435+915*gs[i]/255); err != nil {
				return false
			}
		}
		smp := s.Tick(1)
		return smp.TruePowerW > 0 && !math.IsNaN(smp.MeasuredW) && !math.IsInf(smp.TruePowerW, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkServerTick(b *testing.B) {
	s, err := NewServer(DefaultTestbed(1))
	if err != nil {
		b.Fatal(err)
	}
	zoo := workload.Zoo()
	for i := 0; i < 3; i++ {
		p, err := workload.NewPipeline(workload.PipelineConfig{
			Model: zoo["resnet50"], Workers: 1, PreLatencyBase: 0.004,
			PreLatencyExp: 0.4, ArrivalRateMax: 250, ArrivalExp: 0.5,
			QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := s.AttachPipeline(i, p); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Tick(1)
	}
}

func TestSplitCPUDomainsInsulatesPipelines(t *testing.T) {
	// §6.2: with split domains, throttling the DVFS knob must not slow
	// the GPU pipelines' preprocessing (feeder cores stay at f_max).
	run := func(split bool, fc float64) float64 {
		cfg := DefaultTestbed(5)
		cfg.SplitCPUDomains = split
		cfg.DriftStdW = 0
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		attachStandardWorkloads(t, s)
		s.SetCPUFreq(fc)
		for i := 0; i < s.NumGPUs(); i++ {
			if _, err := s.SetGPUFreq(i, 900); err != nil {
				t.Fatal(err)
			}
		}
		sum := 0.0
		for k := 0; k < 30; k++ {
			sum += s.Tick(1).GPUStats[1].ArrivalRate // swin pipeline, CPU-fed
		}
		return sum / 30
	}
	// Split: arrival identical at min and max knob settings.
	if lo, hi := run(true, 1.0), run(true, 2.4); math.Abs(lo-hi) > 1e-9 {
		t.Fatalf("split domains: arrival should not depend on the knob (%g vs %g)", lo, hi)
	}
	// Unified: throttling slows the feeders.
	if lo, hi := run(false, 1.0), run(false, 2.4); lo >= hi {
		t.Fatalf("unified domain: arrival should drop with the knob (%g vs %g)", lo, hi)
	}
}

func TestSplitCPUDomainsReducesKnobGain(t *testing.T) {
	// The pinned feeder cores shrink the power swing the DVFS knob
	// commands; total power at max frequency is unchanged.
	power := func(split bool, fc float64) float64 {
		cfg := DefaultTestbed(6)
		cfg.SplitCPUDomains = split
		cfg.DriftStdW = 0
		cfg.MeasNoiseW = 0
		s, err := NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		attachStandardWorkloads(t, s)
		s.SetCPUFreq(fc)
		var last float64
		for k := 0; k < 20; k++ {
			last = s.Tick(1).TruePowerW
		}
		return last
	}
	swingSplit := power(true, 2.4) - power(true, 1.0)
	swingUnified := power(false, 2.4) - power(false, 1.0)
	if swingSplit >= swingUnified {
		t.Fatalf("split-domain knob swing %g should be below unified %g", swingSplit, swingUnified)
	}
	if swingSplit <= 0 {
		t.Fatalf("split-domain knob swing %g must stay positive", swingSplit)
	}
}

func TestSplitCPUDomainsValidation(t *testing.T) {
	cfg := DefaultTestbed(7)
	cfg.SplitCPUDomains = true
	cfg.FeederCoreFrac = 1.5
	if _, err := NewServer(cfg); err == nil {
		t.Fatal("expected feeder-fraction error")
	}
}

func TestEnergyAccounting(t *testing.T) {
	cfg := DefaultTestbed(8)
	cfg.DriftStdW = 0
	cfg.MeasNoiseW = 0
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	attachStandardWorkloads(t, s)
	if s.EnergyJ() != 0 {
		t.Fatalf("initial energy %g", s.EnergyJ())
	}
	total := 0.0
	for k := 0; k < 25; k++ {
		smp := s.Tick(1)
		total += smp.TruePowerW * 1
		if math.Abs(smp.EnergyJ-total) > 1e-6 {
			t.Fatalf("tick %d: energy %g, want %g", k, smp.EnergyJ, total)
		}
	}
	if s.EnergyJ() <= 0 {
		t.Fatal("no energy accumulated")
	}
	s.ResetWorkloads()
	if s.EnergyJ() != 0 {
		t.Fatalf("energy not reset: %g", s.EnergyJ())
	}
}

func TestHeterogeneousServer(t *testing.T) {
	// Mixed V100 + A100 server: per-device ranges and snapping must be
	// honored independently.
	cfg := Config{
		CPU:        XeonGold5215(),
		GPUs:       []GPUSpec{TeslaV100(), A100()},
		OtherW:     220,
		MeasNoiseW: 2,
		Seed:       9,
	}
	s, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	zoo := workload.Zoo()
	for i, name := range []string{"resnet50", "swin_t"} {
		fgMax := cfg.GPUs[i].FreqMaxMHz
		p, err := workload.NewPipeline(workload.PipelineConfig{
			Model: zoo[name], Workers: 1, PreLatencyBase: 0.005, PreLatencyExp: 0.4,
			ArrivalRateMax: 150, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: fgMax, Seed: int64(40 + i),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AttachPipeline(i, p); err != nil {
			t.Fatal(err)
		}
	}
	// V100 clamps at 1350; A100 reaches 1410.
	got, err := s.SetGPUFreq(0, 1410)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1350 {
		t.Fatalf("V100 snapped to %g, want 1350", got)
	}
	got, err = s.SetGPUFreq(1, 1410)
	if err != nil {
		t.Fatal(err)
	}
	if got != 1410 {
		t.Fatalf("A100 snapped to %g, want 1410", got)
	}
	// A100 floor is 210, below the V100's 435.
	got, err = s.SetGPUFreq(1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 210 {
		t.Fatalf("A100 floor snap %g, want 210", got)
	}
	smp := s.Tick(1)
	if smp.TruePowerW <= 0 {
		t.Fatal("no power")
	}
}
