// Package sim is the simulated GPU-server testbed that stands in for the
// paper's physical rig (Intel Xeon Gold 5215 + 3× NVIDIA Tesla V100,
// §5). It models per-device power as a near-linear function of clock
// frequency and utilization plus a small nonlinearity and measurement
// noise, so that system identification recovers a linear model with
// R² ≈ 0.96 (Fig. 2a) rather than a perfect fit.
//
// The simulator advances in discrete ticks (the power meter's 1-second
// sampling grain). Inference pipelines (internal/workload) attached to
// each GPU and a batch workload attached to the CPU produce utilization
// and throughput, which feed back into power and into the controllers'
// weight assignment.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/workload"
)

// CPUSpec describes the host CPU's DVFS range and power behavior.
// Frequencies are in GHz.
type CPUSpec struct {
	Name        string
	FreqMinGHz  float64
	FreqMaxGHz  float64
	FreqStepGHz float64 // discrete DVFS step
	Cores       int
	IdleW       float64 // power at minimum activity
	DynWPerGHz  float64 // dynamic power slope at full utilization
	UtilFloor   float64 // fraction of dynamic power drawn even when idle
	NonLinW     float64 // quadratic term amplitude (unmodeled by sysid)
}

// GPUSpec describes one GPU's clock range and power behavior.
// Frequencies are in MHz.
type GPUSpec struct {
	Name        string
	FreqMinMHz  float64
	FreqMaxMHz  float64
	FreqStepMHz float64
	MemClockMHz float64 // fixed, as with `nvidia-smi -ac 877,...` (§5)
	IdleW       float64
	DynWPerMHz  float64
	UtilFloor   float64
	NonLinW     float64
	// MemThrottleSaveW is the power saved by dropping the memory clock
	// to its low state (the §4.4 "additional system mechanisms" knob);
	// MemThrottleLatencyFactor is the batch-latency penalty while
	// throttled.
	MemThrottleSaveW         float64
	MemThrottleLatencyFactor float64
}

// XeonGold5215 returns the host-CPU spec of the paper's testbed. The
// paper quotes a 1.1–2.4 GHz cpupower range in §5 and sweeps 1.0–2.1 GHz
// during system identification in §4.2; the spec below covers the union.
func XeonGold5215() CPUSpec {
	return CPUSpec{
		Name:        "Intel Xeon Gold 5215",
		FreqMinGHz:  1.0,
		FreqMaxGHz:  2.4,
		FreqStepGHz: 0.1,
		Cores:       40,
		IdleW:       70,
		DynWPerGHz:  55,
		UtilFloor:   0.35,
		NonLinW:     14,
	}
}

// TeslaV100 returns the GPU spec of the paper's testbed (435–1350 MHz
// core window with the memory clock pinned at 877 MHz, §5).
func TeslaV100() GPUSpec {
	return GPUSpec{
		Name:                     "NVIDIA Tesla V100-16GB",
		FreqMinMHz:               435,
		FreqMaxMHz:               1350,
		FreqStepMHz:              15,
		MemClockMHz:              877,
		IdleW:                    40,
		DynWPerMHz:               0.14,
		UtilFloor:                0.30,
		NonLinW:                  30,
		MemThrottleSaveW:         25,
		MemThrottleLatencyFactor: 1.12,
	}
}

// A100 returns an NVIDIA A100-40GB (PCIe) class spec, for building
// heterogeneous servers: the MIMO controller handles per-device gains
// natively, so nothing else changes when GPU models are mixed.
func A100() GPUSpec {
	return GPUSpec{
		Name:                     "NVIDIA A100-40GB",
		FreqMinMHz:               210,
		FreqMaxMHz:               1410,
		FreqStepMHz:              15,
		MemClockMHz:              1215,
		IdleW:                    50,
		DynWPerMHz:               0.13,
		UtilFloor:                0.30,
		NonLinW:                  28,
		MemThrottleSaveW:         30,
		MemThrottleLatencyFactor: 1.10,
	}
}

// RTX3090Window returns the motivation experiment's GPU (§3.2), clamped
// to the 495–810 MHz window the paper actually exercises.
func RTX3090Window() GPUSpec {
	return GPUSpec{
		Name:                     "NVIDIA RTX 3090 (495-810 MHz window)",
		FreqMinMHz:               495,
		FreqMaxMHz:               810,
		FreqStepMHz:              15,
		MemClockMHz:              9751,
		IdleW:                    90,
		DynWPerMHz:               0.17,
		UtilFloor:                0.30,
		NonLinW:                  20,
		MemThrottleSaveW:         20,
		MemThrottleLatencyFactor: 1.10,
	}
}

// DesktopCPU returns a desktop-class host CPU for the motivation rig
// (1.1–2.1 GHz window per §3.2).
func DesktopCPU() CPUSpec {
	return CPUSpec{
		Name:        "Desktop host CPU (motivation rig)",
		FreqMinGHz:  1.1,
		FreqMaxGHz:  2.1,
		FreqStepGHz: 0.1,
		Cores:       12,
		IdleW:       25,
		DynWPerGHz:  45,
		UtilFloor:   0.35,
		NonLinW:     9,
	}
}

// Config assembles a server.
type Config struct {
	CPU  CPUSpec
	GPUs []GPUSpec
	// OtherW is the constant floor: fixed-speed fans (the paper pins fan
	// speed to isolate workload-driven variation, §5), DRAM, board.
	OtherW float64
	// MeasNoiseW is the std dev of per-sample power measurement noise.
	MeasNoiseW float64
	// DriftStdW is the stationary standard deviation of a slow AR(1)
	// power drift (thermal/leakage wander under the pinned fan): real
	// servers exhibit it, and it is the main reason the paper's linear
	// identification tops out at R² ≈ 0.96 instead of ~1.
	DriftStdW float64
	// DriftRho is the AR(1) coefficient of the drift (defaults to 0.97
	// when DriftStdW > 0 and DriftRho is unset).
	DriftRho float64
	// SplitCPUDomains reproduces the paper's §6.2 core allocation: the
	// DVFS knob regulates only the cores running the CPU batch workload,
	// while the cores feeding the GPU pipelines (data copying and
	// preprocessing) stay at the maximum frequency. FeederCoreFrac is
	// the fraction of CPU dynamic power drawn by those pinned cores
	// (default 0.3 when split is enabled).
	SplitCPUDomains bool
	FeederCoreFrac  float64
	Seed            int64
}

// DefaultTestbed returns the paper's evaluation server: one Xeon Gold
// 5215 and three Tesla V100s.
func DefaultTestbed(seed int64) Config {
	return Config{
		CPU:        XeonGold5215(),
		GPUs:       []GPUSpec{TeslaV100(), TeslaV100(), TeslaV100()},
		OtherW:     250,
		MeasNoiseW: 3,
		DriftStdW:  14,
		Seed:       seed,
	}
}

// MotivationTestbed returns the §3.2 rig: desktop CPU + one RTX 3090.
func MotivationTestbed(seed int64) Config {
	return Config{
		CPU:        DesktopCPU(),
		GPUs:       []GPUSpec{RTX3090Window()},
		OtherW:     130,
		MeasNoiseW: 2,
		DriftStdW:  5,
		Seed:       seed,
	}
}

// Server is the simulated machine.
type Server struct {
	cfg Config
	rng *rand.Rand

	fc   float64   // applied CPU frequency (GHz)
	fgs  []float64 // applied GPU frequencies (MHz)
	memT []bool    // per-GPU memory-throttle state

	works   []workload.GPUWorkload // indexed by GPU; nil if none
	cpuWork *workload.CPUWorkload

	now    float64 // simulated seconds
	drift  float64 // AR(1) thermal drift state (Watts)
	energy float64 // cumulative true energy (Joules)
	last   Sample
}

// Sample is one tick's full observable state.
type Sample struct {
	TimeS      float64
	TruePowerW float64
	MeasuredW  float64 // TruePowerW + measurement noise
	CPUPowerW  float64 // RAPL-like per-device reading
	GPUPowerW  []float64
	DriftW     float64 // unattributed thermal drift component of the total
	CPUFreqGHz float64
	GPUFreqMHz []float64
	GPUStats   []workload.Stats // zero value where no pipeline attached
	CPUStats   workload.CPUStats
	CPUUtil    float64
	GPUUtil    []float64
	// EnergyJ is the cumulative true energy drawn since construction (or
	// the last ResetWorkloads), in Joules.
	EnergyJ float64
}

// NewServer validates the config and builds the server with every
// device at its minimum frequency (the Fixed-Step baseline's assumed
// initial state, §6.1).
func NewServer(cfg Config) (*Server, error) {
	if cfg.CPU.FreqMinGHz <= 0 || cfg.CPU.FreqMaxGHz <= cfg.CPU.FreqMinGHz {
		return nil, fmt.Errorf("sim: invalid CPU frequency range [%g, %g]", cfg.CPU.FreqMinGHz, cfg.CPU.FreqMaxGHz)
	}
	if len(cfg.GPUs) == 0 {
		return nil, fmt.Errorf("sim: server needs at least one GPU")
	}
	for i, g := range cfg.GPUs {
		if g.FreqMinMHz <= 0 || g.FreqMaxMHz <= g.FreqMinMHz {
			return nil, fmt.Errorf("sim: GPU %d invalid frequency range [%g, %g]", i, g.FreqMinMHz, g.FreqMaxMHz)
		}
	}
	if cfg.DriftStdW > 0 && cfg.DriftRho == 0 {
		cfg.DriftRho = 0.97
	}
	if cfg.SplitCPUDomains && cfg.FeederCoreFrac == 0 {
		cfg.FeederCoreFrac = 0.3
	}
	if cfg.FeederCoreFrac < 0 || cfg.FeederCoreFrac >= 1 {
		return nil, fmt.Errorf("sim: feeder core fraction %g outside [0, 1)", cfg.FeederCoreFrac)
	}
	if cfg.DriftRho < 0 || cfg.DriftRho >= 1 {
		return nil, fmt.Errorf("sim: drift rho %g outside [0, 1)", cfg.DriftRho)
	}
	s := &Server{
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		fc:    cfg.CPU.FreqMinGHz,
		fgs:   make([]float64, len(cfg.GPUs)),
		memT:  make([]bool, len(cfg.GPUs)),
		works: make([]workload.GPUWorkload, len(cfg.GPUs)),
	}
	for i := range s.fgs {
		s.fgs[i] = cfg.GPUs[i].FreqMinMHz
	}
	return s, nil
}

// Config returns the server configuration.
func (s *Server) Config() Config { return s.cfg }

// NumGPUs returns the GPU count.
func (s *Server) NumGPUs() int { return len(s.cfg.GPUs) }

// AttachPipeline binds a CNN inference pipeline to GPU i. A nil
// pipeline detaches the slot (stored as a true nil interface so the
// tick loop's nil check keeps working).
func (s *Server) AttachPipeline(i int, p *workload.Pipeline) error {
	if p == nil {
		return s.AttachWorkload(i, nil)
	}
	return s.AttachWorkload(i, p)
}

// AttachWorkload binds any GPU workload (CNN pipeline or LLM serving
// pipeline) to GPU i; nil detaches.
func (s *Server) AttachWorkload(i int, w workload.GPUWorkload) error {
	if i < 0 || i >= len(s.works) {
		return fmt.Errorf("sim: GPU index %d out of range %d", i, len(s.works))
	}
	s.works[i] = w
	return nil
}

// Pipeline returns the CNN pipeline attached to GPU i (nil if the slot
// is empty or holds a non-CNN workload).
func (s *Server) Pipeline(i int) *workload.Pipeline {
	if i < 0 || i >= len(s.works) {
		return nil
	}
	p, _ := s.works[i].(*workload.Pipeline)
	return p
}

// Workload returns whatever workload is attached to GPU i (nil if
// none).
func (s *Server) Workload(i int) workload.GPUWorkload {
	if i < 0 || i >= len(s.works) {
		return nil
	}
	return s.works[i]
}

// AttachCPUWorkload binds the host-CPU batch workload.
func (s *Server) AttachCPUWorkload(w *workload.CPUWorkload) { s.cpuWork = w }

// CPUWorkload returns the attached CPU workload (nil if none).
func (s *Server) CPUWorkload() *workload.CPUWorkload { return s.cpuWork }

// snap quantizes v onto {min, min+step, ...} clamped to [min, max],
// mirroring hardware: both cpupower and nvidia-smi accept only discrete
// levels (§5).
func snap(v, min, max, step float64) float64 {
	if v < min {
		return min
	}
	if v > max {
		return max
	}
	if step <= 0 {
		return v
	}
	n := math.Round((v - min) / step)
	out := min + n*step
	if out > max {
		out = max
	}
	return out
}

// SetCPUFreq applies a CPU frequency command (GHz), snapping to the
// hardware's discrete levels. It returns the applied value.
func (s *Server) SetCPUFreq(ghz float64) float64 {
	s.fc = snap(ghz, s.cfg.CPU.FreqMinGHz, s.cfg.CPU.FreqMaxGHz, s.cfg.CPU.FreqStepGHz)
	return s.fc
}

// SetGPUFreq applies a GPU core-clock command (MHz) to GPU i, snapping
// to discrete levels. It returns the applied value.
func (s *Server) SetGPUFreq(i int, mhz float64) (float64, error) {
	if i < 0 || i >= len(s.fgs) {
		return 0, fmt.Errorf("sim: GPU index %d out of range %d", i, len(s.fgs))
	}
	g := s.cfg.GPUs[i]
	s.fgs[i] = snap(mhz, g.FreqMinMHz, g.FreqMaxMHz, g.FreqStepMHz)
	return s.fgs[i], nil
}

// SetMemThrottle engages or releases GPU i's low memory-clock state —
// the second-layer actuator for caps unreachable by core-clock scaling
// alone (§4.4).
func (s *Server) SetMemThrottle(i int, on bool) error {
	if i < 0 || i >= len(s.memT) {
		return fmt.Errorf("sim: GPU index %d out of range %d", i, len(s.memT))
	}
	s.memT[i] = on
	return nil
}

// MemThrottled reports GPU i's memory-throttle state.
func (s *Server) MemThrottled(i int) bool {
	if i < 0 || i >= len(s.memT) {
		return false
	}
	return s.memT[i]
}

// CPUFreq returns the applied CPU frequency (GHz).
func (s *Server) CPUFreq() float64 { return s.fc }

// GPUFreq returns the applied core clock of GPU i (MHz).
func (s *Server) GPUFreq(i int) float64 { return s.fgs[i] }

// Now returns the simulated time in seconds.
func (s *Server) Now() float64 { return s.now }

// Last returns the most recent tick sample.
func (s *Server) Last() Sample { return s.last }

// Tick advances the simulation by dt seconds: steps every workload,
// recomputes device power, and returns the sample (one power-meter
// reading).
func (s *Server) Tick(dt float64) Sample {
	if dt <= 0 {
		return s.last
	}
	n := len(s.cfg.GPUs)
	gpuStats := make([]workload.Stats, n)
	gpuUtil := make([]float64, n)
	pipelineCPU := 0.0
	attached := 0
	// With split domains the feeder cores are pinned at f_max (§6.2), so
	// preprocessing throughput is insulated from the DVFS knob.
	fcFeeder := s.fc
	if s.cfg.SplitCPUDomains {
		fcFeeder = s.cfg.CPU.FreqMaxGHz
	}
	for i, p := range s.works {
		if p == nil {
			gpuUtil[i] = 0.05 // housekeeping
			continue
		}
		if s.memT[i] && s.cfg.GPUs[i].MemThrottleLatencyFactor > 1 {
			p.SetExternalLatencyFactor(s.cfg.GPUs[i].MemThrottleLatencyFactor)
		} else {
			p.SetExternalLatencyFactor(1)
		}
		st := p.Step(dt, fcFeeder, s.fgs[i])
		gpuStats[i] = st
		gpuUtil[i] = math.Max(st.GPUUtil, 0.05)
		pipelineCPU += st.CPUUtil
		attached++
	}

	var cpuStats workload.CPUStats
	cpuUtil := 0.10 // OS + controller core
	if attached > 0 {
		// Feeder cores for the pipelines.
		cpuUtil += 0.45 * pipelineCPU / float64(attached)
	}
	if s.cpuWork != nil {
		cpuStats = s.cpuWork.Step(dt, s.fc)
		cpuUtil += 0.45 * cpuStats.Util
	}
	cpuUtil = math.Min(cpuUtil, 1)

	var cpuP float64
	if s.cfg.SplitCPUDomains {
		// Two frequency domains share the package: the pinned feeder
		// cores and the DVFS-regulated workload cores split the dynamic
		// power by FeederCoreFrac.
		ff := s.cfg.FeederCoreFrac
		pinned := devicePower(s.cfg.CPU.FreqMaxGHz, s.cfg.CPU.FreqMaxGHz, cpuUtil,
			0, s.cfg.CPU.DynWPerGHz*ff, s.cfg.CPU.UtilFloor, 0)
		scaled := devicePower(s.fc, s.cfg.CPU.FreqMaxGHz, cpuUtil,
			s.cfg.CPU.IdleW, s.cfg.CPU.DynWPerGHz*(1-ff), s.cfg.CPU.UtilFloor, s.cfg.CPU.NonLinW)
		cpuP = pinned + scaled
	} else {
		cpuP = devicePower(s.fc, s.cfg.CPU.FreqMaxGHz, cpuUtil,
			s.cfg.CPU.IdleW, s.cfg.CPU.DynWPerGHz, s.cfg.CPU.UtilFloor, s.cfg.CPU.NonLinW)
	}
	gpuP := make([]float64, n)
	total := cpuP + s.cfg.OtherW
	for i, g := range s.cfg.GPUs {
		feff := s.fgs[i]
		if st := gpuStats[i]; st.LLM && st.FreqPowerExp > 0 && g.FreqMaxMHz > 0 {
			// Phase-dependent power law: bend the clock through the
			// phase-blended exponent before the linear device law, so a
			// decode-heavy step barely responds to a frequency cap while
			// a prefill-heavy step responds nearly linearly.
			feff = g.FreqMaxMHz * math.Pow(s.fgs[i]/g.FreqMaxMHz, st.FreqPowerExp)
		}
		gpuP[i] = devicePower(feff, g.FreqMaxMHz, gpuUtil[i],
			g.IdleW, g.DynWPerMHz, g.UtilFloor, g.NonLinW)
		if st := gpuStats[i]; st.LLM && st.MoEPowerFactor > 0 {
			// Expert-activation variance scales only the dynamic slice.
			gpuP[i] = g.IdleW + (gpuP[i]-g.IdleW)*st.MoEPowerFactor
		}
		if s.memT[i] {
			// Memory-clock drop saves a mostly-constant slice, slightly
			// larger when the memory system is busy.
			save := g.MemThrottleSaveW * (0.6 + 0.4*gpuUtil[i])
			gpuP[i] -= save
			if gpuP[i] < g.IdleW/2 {
				gpuP[i] = g.IdleW / 2
			}
		}
		total += gpuP[i]
	}

	if s.cfg.DriftStdW > 0 {
		rho := s.cfg.DriftRho
		inn := s.cfg.DriftStdW * math.Sqrt(1-rho*rho)
		s.drift = rho*s.drift + inn*s.rng.NormFloat64()
		total += s.drift
	}

	s.now += dt
	s.energy += total * dt
	s.last = Sample{
		TimeS:      s.now,
		TruePowerW: total,
		DriftW:     s.drift,
		MeasuredW:  total + s.cfg.MeasNoiseW*s.rng.NormFloat64(),
		CPUPowerW:  cpuP,
		GPUPowerW:  gpuP,
		CPUFreqGHz: s.fc,
		GPUFreqMHz: append([]float64(nil), s.fgs...),
		GPUStats:   gpuStats,
		CPUStats:   cpuStats,
		CPUUtil:    cpuUtil,
		GPUUtil:    gpuUtil,
		EnergyJ:    s.energy,
	}
	return s.last
}

// EnergyJ returns the cumulative true energy drawn, in Joules.
func (s *Server) EnergyJ() float64 { return s.energy }

// devicePower implements the per-device power law:
//
//	P = idle + dyn·f·(floor + (1−floor)·util) + nonlin·(f/fmax)²
//
// Linear in f to first order (the basis of the paper's Eq. 3 model) with
// a small quadratic residual so identification is imperfect.
func devicePower(f, fmax, util, idle, dyn, floor, nonlin float64) float64 {
	//lint:ignore floatsafety fmax comes from a DeviceSpec validated positive at server construction
	return idle + dyn*f*(floor+(1-floor)*util) + nonlin*(f/fmax)*(f/fmax)
}

// PowerRange returns the achievable [min, max] total power at full
// utilization, used by experiments to pick feasible set points.
func (s *Server) PowerRange() (min, max float64) {
	min = s.cfg.OtherW + devicePower(s.cfg.CPU.FreqMinGHz, s.cfg.CPU.FreqMaxGHz, 1,
		s.cfg.CPU.IdleW, s.cfg.CPU.DynWPerGHz, s.cfg.CPU.UtilFloor, s.cfg.CPU.NonLinW)
	max = s.cfg.OtherW + devicePower(s.cfg.CPU.FreqMaxGHz, s.cfg.CPU.FreqMaxGHz, 1,
		s.cfg.CPU.IdleW, s.cfg.CPU.DynWPerGHz, s.cfg.CPU.UtilFloor, s.cfg.CPU.NonLinW)
	for _, g := range s.cfg.GPUs {
		min += devicePower(g.FreqMinMHz, g.FreqMaxMHz, 1, g.IdleW, g.DynWPerMHz, g.UtilFloor, g.NonLinW)
		max += devicePower(g.FreqMaxMHz, g.FreqMaxMHz, 1, g.IdleW, g.DynWPerMHz, g.UtilFloor, g.NonLinW)
	}
	return min, max
}

// SetArrivalScale sets the open-loop arrival multiplier on every
// attached inference pipeline (1 = nominal). Load generators drive it
// per period to impose diurnal and bursty traffic.
func (s *Server) SetArrivalScale(f float64) {
	for _, p := range s.works {
		if p != nil {
			p.SetArrivalScale(f)
		}
	}
}

// ResetWorkloads resets attached workloads and the clock; device
// frequencies are preserved.
func (s *Server) ResetWorkloads() {
	for _, p := range s.works {
		if p != nil {
			p.Reset()
		}
	}
	if s.cpuWork != nil {
		s.cpuWork.Reset()
	}
	s.now = 0
	s.drift = 0
	s.energy = 0
	s.rng = rand.New(rand.NewSource(s.cfg.Seed))
	s.last = Sample{}
}
