package provenance

// The offline half of the package: load a trace JSONL stream back into
// a span forest, walk causal chains, render them for humans, attribute
// node-periods and energy to root-cause classes, and verify that every
// cap change in a flight stream is covered by a cap-change span — the
// engine behind capgpu-trace, capgpu-doctor -explain, and the soak
// gate's zero-unattributed check.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/flight"
)

// Root-cause classes beyond the policy-op kinds.
const (
	ClassPeriodic           = "periodic" // causeless reallocation (demand/budget drift)
	ClassHeartbeatLoss      = "heartbeat-loss"
	ClassRecovery           = "recovery"
	ClassReservationRelease = "reservation-release"
	ClassNodeRelease        = "node-release"
	ClassInitial            = "initial"      // periods before the first traced cap change
	ClassUnattributed       = "unattributed" // CauseID missing from the trace — a bug
)

// Trace is a loaded span forest.
type Trace struct {
	Spans []*Span // stream order
	byID  map[string]*Span
}

// LoadTrace parses a trace JSONL stream written by a Tracer.
func LoadTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{byID: map[string]*Span{}}
	dec := json.NewDecoder(r)
	line := 0
	for {
		var l traceLine
		if err := dec.Decode(&l); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("provenance: trace line %d: %w", line+1, err)
		}
		line++
		switch l.Rec {
		case "span":
			if tr.byID[l.ID] != nil {
				return nil, fmt.Errorf("provenance: trace line %d: duplicate span %q", line, l.ID)
			}
			s := &Span{
				ID: l.ID, Parent: l.Parent, Causes: l.Causes, Kind: l.Kind,
				Period: l.Period, Node: l.Node, Detail: l.Detail,
				FromW: l.FromW, ToW: l.ToW, EndPeriod: l.EndPeriod, Outcome: l.Outcome,
			}
			tr.byID[s.ID] = s
			tr.Spans = append(tr.Spans, s)
		case "close":
			s := tr.byID[l.ID]
			if s == nil {
				return nil, fmt.Errorf("provenance: trace line %d: close for unknown span %q", line, l.ID)
			}
			s.EndPeriod = l.EndPeriod
			s.Outcome = l.Outcome
			s.SettlePeriods = l.SettlePeriods
		default:
			return nil, fmt.Errorf("provenance: trace line %d: unknown record kind %q", line, l.Rec)
		}
	}
	return tr, nil
}

// Span returns the span by ID, nil when absent.
func (tr *Trace) Span(id string) *Span { return tr.byID[id] }

// Chain walks from the span's root cause down to the span itself.
// Unknown IDs and cycles yield a nil chain.
func (tr *Trace) Chain(id string) []*Span {
	var rev []*Span
	seen := map[string]bool{}
	for cur := tr.byID[id]; cur != nil; cur = tr.byID[cur.Parent] {
		if seen[cur.ID] {
			return nil
		}
		seen[cur.ID] = true
		rev = append(rev, cur)
		if cur.Parent == "" {
			break
		}
	}
	if len(rev) == 0 {
		return nil
	}
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// RootClass classifies the root cause behind a span ID: the op kind
// for policy-op roots ("budget", "drain", "kill", …), the dedicated
// class constants for coordinator-minted roots, ClassUnattributed for
// IDs the trace does not contain.
func (tr *Trace) RootClass(id string) string {
	chain := tr.Chain(id)
	if chain == nil {
		return ClassUnattributed
	}
	root := chain[0]
	switch root.Kind {
	case KindPolicyOp:
		return opKindFromID(root.ID)
	case KindRealloc:
		return ClassPeriodic
	case KindNodeDead:
		return ClassHeartbeatLoss
	case KindNodeRecovered:
		return ClassRecovery
	case KindReservationReleased:
		return ClassReservationRelease
	case KindNodeReleased:
		return ClassNodeRelease
	case KindAlert:
		return "alert:" + root.Detail
	}
	return root.Kind
}

// opKindFromID extracts the op kind from a policy-op span ID of the
// form "op:<kind>@<period>[#n]".
func opKindFromID(id string) string {
	s := strings.TrimPrefix(id, "op:")
	if at := strings.IndexByte(s, '@'); at >= 0 {
		s = s[:at]
	}
	return s
}

// FormatSpan renders one span the way the explain chain prints it.
func FormatSpan(s *Span) string {
	switch s.Kind {
	case KindPolicyOp:
		out := strings.TrimPrefix(s.ID, "op:")
		if s.Detail != "" {
			out += " [" + s.Detail + "]"
		}
		if s.Outcome == OutcomeRejected {
			out += " (rejected)"
		}
		return out
	case KindRealloc:
		if s.Detail == "periodic" {
			return "reallocation " + s.ID + "@" + strconv.Itoa(s.Period) + " (periodic)"
		}
		return "reallocation " + s.ID + "@" + strconv.Itoa(s.Period)
	case KindCapChange:
		out := fmt.Sprintf("node %s cap %.0f→%.0f W", s.Node, s.FromW, s.ToW)
		switch s.Outcome {
		case OutcomeSettled:
			out += fmt.Sprintf(" → settled in %d period", s.SettlePeriods)
			if s.SettlePeriods != 1 {
				out += "s"
			}
		case OutcomeSuperseded:
			out += fmt.Sprintf(" → superseded@%d", s.EndPeriod)
		case OutcomeRunEnd:
			out += " → open at run end"
		case "":
			out += " → open"
		}
		return out
	case KindNodeDead:
		return fmt.Sprintf("heartbeat-loss %s@%d (%s)", s.Node, s.Period, s.Detail)
	case KindNodeRecovered:
		return fmt.Sprintf("recovery %s@%d", s.Node, s.Period)
	case KindReservationReleased:
		return fmt.Sprintf("reservation-released %s@%d", s.Node, s.Period)
	case KindNodeReleased:
		return fmt.Sprintf("node-released %s@%d", s.Node, s.Period)
	case KindAlert:
		return fmt.Sprintf("alert %s %s@%d", s.Detail, s.Node, s.Period)
	case KindFailSafe:
		return fmt.Sprintf("failsafe %s@%d", s.Node, s.Period)
	case KindFault:
		return fmt.Sprintf("fault %s@%d (%s)", s.Node, s.Period, s.Detail)
	}
	return s.ID
}

// FormatChain renders a causal chain as one "a → b → c" line.
func FormatChain(chain []*Span) string {
	parts := make([]string, len(chain))
	for i, s := range chain {
		parts[i] = FormatSpan(s)
	}
	return strings.Join(parts, " → ")
}

// AttributionRow is one root-cause class's share of the run.
type AttributionRow struct {
	Class      string  `json:"class"`
	CapChanges int     `json:"cap_changes"`          // cap-change spans rooted in the class
	Periods    int     `json:"periods"`              // node-periods run under the class
	EnergyWh   float64 `json:"energy_wh"`            // true energy drawn during those periods
	AvgSettle  float64 `json:"avg_settle,omitempty"` // mean settle periods of settled changes
}

// Attribution folds the trace and the per-node flight streams into the
// end-of-run table: every node-period is charged to the root-cause
// class of the cap it ran under (ClassInitial before the first traced
// change), every cap-change span to its root class, energy integrated
// at periodS seconds per period from the breaker-side truth.
func (tr *Trace) Attribution(flights map[string][]flight.DecisionRecord, periodS float64) []AttributionRow {
	rows := map[string]*AttributionRow{}
	row := func(class string) *AttributionRow {
		r := rows[class]
		if r == nil {
			r = &AttributionRow{Class: class}
			rows[class] = r
		}
		return r
	}
	settleSum := map[string]int{}
	settleN := map[string]int{}
	for _, s := range tr.Spans {
		if s.Kind != KindCapChange {
			continue
		}
		class := tr.RootClass(s.ID)
		row(class).CapChanges++
		if s.Outcome == OutcomeSettled {
			settleSum[class] += s.SettlePeriods
			settleN[class]++
		}
	}
	names := make([]string, 0, len(flights))
	for n := range flights {
		//lint:ignore determinism names are sorted immediately below
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		for _, rec := range flights[n] {
			class := ClassInitial
			if rec.CauseID != "" {
				class = tr.RootClass(rec.CauseID)
			}
			r := row(class)
			r.Periods++
			r.EnergyWh += rec.TruePowerW * periodS / 3600
		}
	}
	classes := make([]string, 0, len(rows))
	for c := range rows {
		//lint:ignore determinism classes are sorted immediately below
		classes = append(classes, c)
	}
	sort.Strings(classes)
	out := make([]AttributionRow, 0, len(classes))
	for _, c := range classes {
		r := *rows[c]
		if settleN[c] > 0 {
			r.AvgSettle = float64(settleSum[c]) / float64(settleN[c])
		}
		out = append(out, r)
	}
	return out
}

// FormatAttribution renders the attribution rows as an aligned text
// table.
func FormatAttribution(rows []AttributionRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %12s %10s %12s %10s\n", "root cause", "cap changes", "periods", "energy (Wh)", "settle")
	totalChanges, totalPeriods, totalWh := 0, 0, 0.0
	for _, r := range rows {
		settle := "-"
		if r.AvgSettle > 0 {
			settle = fmt.Sprintf("%.1f", r.AvgSettle)
		}
		fmt.Fprintf(&b, "%-24s %12d %10d %12.1f %10s\n", r.Class, r.CapChanges, r.Periods, r.EnergyWh, settle)
		totalChanges += r.CapChanges
		totalPeriods += r.Periods
		totalWh += r.EnergyWh
	}
	fmt.Fprintf(&b, "%-24s %12d %10d %12.1f %10s\n", "total", totalChanges, totalPeriods, totalWh, "")
	return b.String()
}

// VerifyAttribution checks one node's flight stream against the trace:
// every setpoint move of at least epsilonW between consecutive records
// must carry a CauseID resolving to a cap-change span for that node
// whose target matches the new setpoint. It returns one message per
// violation (empty = fully attributed).
func (tr *Trace) VerifyAttribution(node string, recs []flight.DecisionRecord, epsilonW float64) []string {
	var problems []string
	for i, rec := range recs {
		if i > 0 {
			d := rec.SetpointW - recs[i-1].SetpointW
			if (d >= epsilonW || -d >= epsilonW) && rec.CauseID == "" {
				problems = append(problems, fmt.Sprintf(
					"%s period %d: cap moved %.1f→%.1f W with no cause",
					node, rec.Period, recs[i-1].SetpointW, rec.SetpointW))
				continue
			}
			if (d >= epsilonW || -d >= epsilonW) && rec.CauseID == recs[i-1].CauseID {
				problems = append(problems, fmt.Sprintf(
					"%s period %d: cap moved %.1f→%.1f W but the cause (%s) did not change",
					node, rec.Period, recs[i-1].SetpointW, rec.SetpointW, rec.CauseID))
				continue
			}
		}
		if rec.CauseID == "" {
			continue
		}
		s := tr.byID[rec.CauseID]
		switch {
		case s == nil:
			problems = append(problems, fmt.Sprintf(
				"%s period %d: cause %s not in the trace", node, rec.Period, rec.CauseID))
		case s.Kind != KindCapChange:
			problems = append(problems, fmt.Sprintf(
				"%s period %d: cause %s is a %s span, not a cap change", node, rec.Period, rec.CauseID, s.Kind))
		case s.Node != node:
			problems = append(problems, fmt.Sprintf(
				"%s period %d: cause %s belongs to node %s", node, rec.Period, rec.CauseID, s.Node))
		case s.Period > rec.Period:
			problems = append(problems, fmt.Sprintf(
				"%s period %d: cause %s minted later, at period %d", node, rec.Period, rec.CauseID, s.Period))
		case rec.ParentID != s.Parent:
			problems = append(problems, fmt.Sprintf(
				"%s period %d: record parent %q disagrees with span parent %q", node, rec.Period, rec.ParentID, s.Parent))
		}
	}
	return problems
}
