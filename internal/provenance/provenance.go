// Package provenance is the causal-tracing layer of the control plane:
// every cause that can move a node's power cap — a policy op at a
// barrier, a heartbeat-loss death, a reservation release, a drain ramp
// — mints a replay-stable span, reallocations consume the staged
// causes, and each per-node cap change becomes a child span that stays
// open until the realized power settles inside the slack. The result
// is a queryable span tree per root cause: "budget@4310 → reallocation
// r17 → node h2 cap 310→268 W → settled in 3 periods".
//
// Determinism contract: the package sits inside the capgpu-lint
// determinism scope. Span IDs are derived from content (kind, node,
// period) plus deterministic sequence counters, never from wall time
// or randomness, so a checkpoint-restored daemon re-mints the byte-
// identical trace stream. Worker-count invariance is handled by the
// two pending queues: records minted on the coordinator goroutine
// (deaths, reallocations, cap changes, settlement closes) accumulate
// separately from records minted inside telemetry's alert engine
// (whose hook fires under the hub shard lock at positions that differ
// between sequential and buffered stepping), and EndStep flushes the
// coordinator queue first — the JSONL bytes come out identical at any
// worker count because each queue's internal order is already
// node-index order.
//
// The Tracer is not a hot-path object: the cluster coordinator holds
// it behind a locally defined interface and guards every call with one
// nil check, so runs without tracing pay nothing and the hotalloc
// analyzer's reachability walk stops at the interface boundary.
package provenance

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// Span kinds. Policy ops, reallocations, and releases are point spans
// (closed at mint); deaths, cap changes, alerts, failsafe and fault
// windows stay open until their closing condition or run end.
const (
	KindPolicyOp            = "policy-op"
	KindNodeDead            = "node-dead"
	KindNodeRecovered       = "node-recovered"
	KindReservationReleased = "reservation-released"
	KindNodeReleased        = "node-released"
	KindRealloc             = "reallocation"
	KindCapChange           = "cap-change"
	KindFailSafe            = "failsafe"
	KindFault               = "fault"
	KindAlert               = "alert"
)

// Span outcomes.
const (
	OutcomeApplied    = "applied"    // point span: the mutation took effect
	OutcomeRejected   = "rejected"   // point span: the mutation was refused
	OutcomeSettled    = "settled"    // cap change: realized power inside slack
	OutcomeSuperseded = "superseded" // cap change: replaced before settling
	OutcomeRecovered  = "recovered"  // death window: the node came back
	OutcomeResolved   = "resolved"   // alert window: the rule cleared
	OutcomeExited     = "exited"     // failsafe/fault window: condition cleared
	OutcomeRunEnd     = "run-end"    // still open when the run finished
)

// Span is one node of the causal tree. Parent is the primary cause
// (tree edge); Causes lists every staged cause a reallocation
// consumed, Parent being Causes[0]. A span with Outcome "" is open.
type Span struct {
	ID     string   `json:"id"`
	Parent string   `json:"parent,omitempty"`
	Causes []string `json:"causes,omitempty"`
	Kind   string   `json:"kind"`
	Period int      `json:"period"`
	Node   string   `json:"node,omitempty"`
	Detail string   `json:"detail,omitempty"`
	FromW  float64  `json:"from_w,omitempty"`
	ToW    float64  `json:"to_w,omitempty"`

	EndPeriod int    `json:"end_period,omitempty"`
	Outcome   string `json:"outcome,omitempty"`
	// SettlePeriods is how many control periods a cap change needed
	// until the realized power first held inside the slack (1 = settled
	// in the period the cap was applied).
	SettlePeriods int `json:"settle_periods,omitempty"`
}

// Open reports whether the span has not been closed yet.
func (s *Span) Open() bool { return s.Outcome == "" }

// traceLine is one JSONL record: a span open (with the span's fields
// at mint time) or a close that back-fills the outcome.
type traceLine struct {
	Rec           string   `json:"rec"` // "span" | "close"
	ID            string   `json:"id"`
	Parent        string   `json:"parent,omitempty"`
	Causes        []string `json:"causes,omitempty"`
	Kind          string   `json:"kind,omitempty"`
	Period        int      `json:"period,omitempty"`
	Node          string   `json:"node,omitempty"`
	Detail        string   `json:"detail,omitempty"`
	FromW         float64  `json:"from_w,omitempty"`
	ToW           float64  `json:"to_w,omitempty"`
	EndPeriod     int      `json:"end_period,omitempty"`
	Outcome       string   `json:"outcome,omitempty"`
	SettlePeriods int      `json:"settle_periods,omitempty"`
}

// Config tunes a Tracer. The zero value keeps everything in memory
// with the documented defaults.
type Config struct {
	// JSONL, when set, receives every span open and close as one JSON
	// line, flushed at period barriers. Write errors are sticky and
	// reported by Err.
	JSONL io.Writer
	// SettleSlackFrac is the fraction above the new cap within which
	// realized power counts as settled (default 0.02).
	SettleSlackFrac float64
	// EpsilonW is the smallest |Δcap| that mints a cap-change span
	// (default 0.5 W); smaller moves are allocator jitter, not causes.
	EpsilonW float64
}

// DefaultSettleSlackFrac and DefaultEpsilonW are the Config defaults.
const (
	DefaultSettleSlackFrac = 0.02
	DefaultEpsilonW        = 0.5
)

// capState tracks one node's open cap-change span toward settlement.
type capState struct {
	span    *Span
	targetW float64
	startK  int
}

// nodeObs tracks one node's open failsafe/fault windows.
type nodeObs struct {
	failSafe *Span
	fault    *Span
	dead     *Span
}

// Tracer mints and closes spans. One goroutine (the coordinator's)
// drives every method except OnAlertEvent, which the telemetry hub's
// alert engine calls under its shard lock; the mutex makes the two
// safe together and lets HTTP handlers read span trees mid-run.
type Tracer struct {
	mu sync.Mutex

	jsonl io.Writer
	jerr  error

	slackFrac float64
	epsilonW  float64

	spans map[string]*Span
	order []string

	staged     []string          // cause IDs awaiting the next reallocation
	kills      map[string]string // node → kill-op span (parents the death)
	revives    map[string]string // node → revive-op span (parents the recovery)
	nodes      map[string]*nodeObs
	caps       map[string]*capState
	reallocSeq int
	reallocID  string // current barrier's reallocation span

	// pendCoord holds lines minted on the coordinator goroutine;
	// pendAlert holds lines minted by the telemetry alert hook. EndStep
	// flushes coordinator lines first so the stream is byte-identical
	// whether alerts fired during the fan-out (Workers=1) or at the
	// merge barrier (Workers>1) — see the package comment.
	pendCoord [][]byte
	pendAlert [][]byte
}

// New builds a Tracer.
func New(cfg Config) *Tracer {
	if cfg.SettleSlackFrac <= 0 {
		cfg.SettleSlackFrac = DefaultSettleSlackFrac
	}
	if cfg.EpsilonW <= 0 {
		cfg.EpsilonW = DefaultEpsilonW
	}
	return &Tracer{
		jsonl:     cfg.JSONL,
		slackFrac: cfg.SettleSlackFrac,
		epsilonW:  cfg.EpsilonW,
		spans:     map[string]*Span{},
		kills:     map[string]string{},
		revives:   map[string]string{},
		nodes:     map[string]*nodeObs{},
		caps:      map[string]*capState{},
	}
}

// EpsilonW returns the cap-change threshold the tracer mints at — the
// same value verification must use to diff flight setpoints.
func (t *Tracer) EpsilonW() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.epsilonW
}

// Err returns the first JSONL write error, if any.
func (t *Tracer) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.jerr
}

// uniqueID returns id, or id with a "#n" suffix when a span by that
// name already exists (two joins at one barrier, say). The counter is
// a pure function of the existing span set, so replay re-derives it.
func (t *Tracer) uniqueID(id string) string {
	if _, taken := t.spans[id]; !taken {
		return id
	}
	for n := 2; ; n++ {
		c := id + "#" + strconv.Itoa(n)
		if _, taken := t.spans[c]; !taken {
			return c
		}
	}
}

// open registers a span and queues its JSONL line on the given queue.
func (t *Tracer) open(s *Span, alertSide bool) {
	s.ID = t.uniqueID(s.ID)
	t.spans[s.ID] = s
	t.order = append(t.order, s.ID)
	t.queue(traceLine{
		Rec: "span", ID: s.ID, Parent: s.Parent, Causes: s.Causes,
		Kind: s.Kind, Period: s.Period, Node: s.Node, Detail: s.Detail,
		FromW: s.FromW, ToW: s.ToW, EndPeriod: s.EndPeriod, Outcome: s.Outcome,
	}, alertSide)
}

// close finalizes a span and queues the close line.
func (t *Tracer) close(s *Span, endPeriod int, outcome string, settle int, alertSide bool) {
	if s == nil || !s.Open() {
		return
	}
	s.EndPeriod = endPeriod
	s.Outcome = outcome
	s.SettlePeriods = settle
	t.queue(traceLine{
		Rec: "close", ID: s.ID, EndPeriod: endPeriod, Outcome: outcome, SettlePeriods: settle,
	}, alertSide)
}

// queue marshals one line into the chosen pending queue. Marshaling at
// mint time snapshots the span before later closes mutate it.
func (t *Tracer) queue(l traceLine, alertSide bool) {
	if t.jsonl == nil || t.jerr != nil {
		return
	}
	b, err := json.Marshal(l)
	if err != nil {
		t.jerr = err
		return
	}
	b = append(b, '\n')
	if alertSide {
		t.pendAlert = append(t.pendAlert, b)
	} else {
		t.pendCoord = append(t.pendCoord, b)
	}
}

// BeginPolicyOp mints the span for one control-plane mutation at
// barrier period k and returns its ID; EndPolicyOp closes it once the
// mutation resolved. The two-phase shape lets the daemon stamp the
// op's own telemetry (node-join, drain-start) with the cause while
// the op is still being applied. The caller stages the ID (Stage) or
// registers it (RegisterKill/RegisterRevive) according to the op's
// effect; rejected ops are recorded for the audit trail but cause
// nothing.
func (t *Tracer) BeginPolicyOp(kind string, k int, node, detail string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		ID: "op:" + kind + "@" + strconv.Itoa(k), Kind: KindPolicyOp,
		Period: k, Node: node, Detail: detail,
	}
	t.open(s, false)
	return s.ID
}

// EndPolicyOp closes a policy-op span with the applied/rejected
// outcome.
func (t *Tracer) EndPolicyOp(id string, k int, applied bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	outcome := OutcomeApplied
	if !applied {
		outcome = OutcomeRejected
	}
	t.close(t.spans[id], k, outcome, 0, false)
}

// Stage queues a cause for the next reallocation to consume.
func (t *Tracer) Stage(id string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if id != "" {
		t.staged = append(t.staged, id)
	}
}

// RegisterKill links a kill op to the death span the heartbeat roll
// call will mint once the node misses enough beats.
func (t *Tracer) RegisterKill(node, opID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.kills[node] = opID
}

// RegisterRevive links a revive op to the recovery span the roll call
// will mint when the node's heartbeat returns.
func (t *Tracer) RegisterRevive(node, opID string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.revives[node] = opID
}

// NodeReleased mints the point span for a drained member leaving the
// rack, parented to the drain op that started the ramp, and returns
// its ID for the caller to stage.
func (t *Tracer) NodeReleased(node string, k int, parent string) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		ID: "released:" + node + "@" + strconv.Itoa(k), Parent: parent,
		Kind: KindNodeReleased, Period: k, Node: node, EndPeriod: k, Outcome: OutcomeApplied,
	}
	t.open(s, false)
	return s.ID
}

// obsFor returns (building if needed) node's observation state.
func (t *Tracer) obsFor(node string) *nodeObs {
	o := t.nodes[node]
	if o == nil {
		o = &nodeObs{}
		t.nodes[node] = o
	}
	return o
}

// NodeDead opens a death window when the roll call declares a node
// dead, parented to the kill op when one is registered, stages it as a
// reallocation cause, and returns its ID.
func (t *Tracer) NodeDead(node string, k, missed int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	s := &Span{
		ID: "death:" + node + "@" + strconv.Itoa(k), Parent: t.kills[node],
		Kind: KindNodeDead, Period: k, Node: node,
		Detail: "missed=" + strconv.Itoa(missed),
	}
	delete(t.kills, node)
	t.open(s, false)
	t.obsFor(node).dead = s
	t.staged = append(t.staged, s.ID)
	return s.ID
}

// NodeRecovered closes the node's death window, opens the recovery
// point span (parented to the revive op when one is registered),
// stages it, and returns its ID.
func (t *Tracer) NodeRecovered(node string, k int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	o := t.obsFor(node)
	if o.dead != nil {
		t.close(o.dead, k, OutcomeRecovered, 0, false)
		o.dead = nil
	}
	s := &Span{
		ID: "recover:" + node + "@" + strconv.Itoa(k), Parent: t.revives[node],
		Kind: KindNodeRecovered, Period: k, Node: node, EndPeriod: k, Outcome: OutcomeApplied,
	}
	delete(t.revives, node)
	t.open(s, false)
	t.staged = append(t.staged, s.ID)
	return s.ID
}

// ReservationReleased marks a dead node's budget reservation lapsing,
// parented to the death window it belongs to, stages it, and returns
// its ID.
func (t *Tracer) ReservationReleased(node string, k int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := ""
	if o := t.nodes[node]; o != nil && o.dead != nil {
		parent = o.dead.ID
	}
	s := &Span{
		ID: "resv:" + node + "@" + strconv.Itoa(k), Parent: parent,
		Kind: KindReservationReleased, Period: k, Node: node, EndPeriod: k, Outcome: OutcomeApplied,
	}
	t.open(s, false)
	t.staged = append(t.staged, s.ID)
	return s.ID
}

// BeginRealloc mints this barrier's reallocation span, consuming every
// staged cause: the first staged cause becomes the tree parent, the
// full list rides in Causes, and a reallocation with no staged causes
// is its own root — the periodic/demand-driven class. Returns the span
// ID for stamping the reallocation telemetry event.
func (t *Tracer) BeginRealloc(k int) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.reallocSeq++
	s := &Span{
		ID:     "r" + strconv.Itoa(t.reallocSeq),
		Kind:   KindRealloc,
		Period: k, EndPeriod: k, Outcome: OutcomeApplied,
	}
	if len(t.staged) > 0 {
		s.Parent = t.staged[0]
		s.Causes = t.staged
		t.staged = nil
	} else {
		s.Detail = "periodic"
	}
	t.open(s, false)
	t.reallocID = s.ID
	return s.ID
}

// CapChange mints a cap-change span for one node under the current
// reallocation when |toW−fromW| ≥ EpsilonW, superseding the node's
// previous open cap span, and returns (id, parent) for the harness
// stamp. Below the epsilon it returns ("", "") and mints nothing.
func (t *Tracer) CapChange(node string, k int, fromW, toW float64) (id, parent string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	d := toW - fromW
	if d < t.epsilonW && -d < t.epsilonW {
		return "", ""
	}
	if c := t.caps[node]; c != nil {
		t.close(c.span, k, OutcomeSuperseded, 0, false)
	}
	s := &Span{
		ID: "cap:" + node + "@" + strconv.Itoa(k), Parent: t.reallocID,
		Kind: KindCapChange, Period: k, Node: node, FromW: fromW, ToW: toW,
	}
	t.open(s, false)
	t.caps[node] = &capState{span: s, targetW: toW, startK: k}
	return s.ID, s.Parent
}

// ObserveNode folds one node's realized period into the open windows:
// a cap change settles when the true power first holds inside the
// slack; failsafe and fault windows open and close on their state
// transitions. Called at the coordinator's merge barrier, in
// node-index order.
func (t *Tracer) ObserveNode(node string, k int, trueW float64, failSafe, degraded bool, faults []string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if c := t.caps[node]; c != nil && trueW <= c.targetW*(1+t.slackFrac) {
		t.close(c.span, k, OutcomeSettled, k-c.startK+1, false)
		delete(t.caps, node)
	}
	o := t.obsFor(node)
	switch {
	case failSafe && o.failSafe == nil:
		s := &Span{ID: "failsafe:" + node + "@" + strconv.Itoa(k), Kind: KindFailSafe, Period: k, Node: node}
		t.open(s, false)
		o.failSafe = s
	case !failSafe && o.failSafe != nil:
		t.close(o.failSafe, k, OutcomeExited, 0, false)
		o.failSafe = nil
	}
	faulted := degraded || len(faults) > 0
	switch {
	case faulted && o.fault == nil:
		detail := "degraded"
		if len(faults) > 0 {
			detail = faults[0]
			for _, f := range faults[1:] {
				detail += "," + f
			}
		}
		s := &Span{ID: "fault:" + node + "@" + strconv.Itoa(k), Kind: KindFault, Period: k, Node: node, Detail: detail}
		t.open(s, false)
		o.fault = s
	case !faulted && o.fault != nil:
		t.close(o.fault, k, OutcomeExited, 0, false)
		o.fault = nil
	}
}

// OnAlertEvent is the telemetry alert hook: firing opens an alert
// span, resolved closes it. It runs under the hub's shard lock at
// positions that vary with the worker count, so its lines go on the
// alert queue — flushed after the coordinator queue at each barrier.
func (t *Tracer) OnAlertEvent(rule, node string, k int, value float64, firing bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	key := "alert:" + rule + ":" + node
	if firing {
		s := &Span{
			ID: key + "@" + strconv.Itoa(k), Kind: KindAlert,
			Period: k, Node: node, Detail: rule, ToW: value,
		}
		t.open(s, true)
		return
	}
	// Resolve the most recent open span for this (rule, node): scan the
	// insertion order backwards.
	for i := len(t.order) - 1; i >= 0; i-- {
		s := t.spans[t.order[i]]
		if s.Kind == KindAlert && s.Node == node && s.Detail == rule && s.Open() {
			t.close(s, k, OutcomeResolved, 0, true)
			return
		}
	}
}

// EndStep flushes the barrier's pending lines: coordinator mints
// first, alert mints second.
func (t *Tracer) EndStep(int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.flushLocked()
}

func (t *Tracer) flushLocked() {
	if t.jsonl != nil && t.jerr == nil {
		for _, b := range t.pendCoord {
			if _, err := t.jsonl.Write(b); err != nil {
				t.jerr = err
				break
			}
		}
	}
	if t.jsonl != nil && t.jerr == nil {
		for _, b := range t.pendAlert {
			if _, err := t.jsonl.Write(b); err != nil {
				t.jerr = err
				break
			}
		}
	}
	t.pendCoord = t.pendCoord[:0]
	t.pendAlert = t.pendAlert[:0]
}

// Finish closes every window still open at the end of the run with
// the run-end outcome, flushes, and returns the sticky write error.
// Call it after the telemetry hub's Finish so alert resolutions land
// first.
func (t *Tracer) Finish(k int) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	// Deterministic close order: spans in insertion order.
	for _, id := range t.order {
		s := t.spans[id]
		if !s.Open() {
			continue
		}
		settle := 0
		if s.Kind == KindCapChange {
			if c := t.caps[s.Node]; c != nil && c.span == s {
				delete(t.caps, s.Node)
			}
		}
		t.close(s, k, OutcomeRunEnd, settle, false)
	}
	t.flushLocked()
	return t.jerr
}

// Spans returns the spans in insertion order (shared pointers; callers
// must not mutate). For tests and in-process queries.
func (t *Tracer) Spans() []*Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]*Span, len(t.order))
	for i, id := range t.order {
		out[i] = t.spans[id]
	}
	return out
}

// treeNode is the /trace payload shape: a span with its children.
type treeNode struct {
	Span
	Children []*treeNode `json:"children,omitempty"`
}

// SpanTreesJSON renders the span forest as indented JSON, keeping the
// spans whose [Period, EndPeriod] window overlaps [from, to] (to < 0
// means no upper bound; open spans extend to the horizon). A kept
// child keeps its ancestors so chains stay rooted. This implements the
// telemetry handler's TraceSource.
func (t *Tracer) SpanTreesJSON(from, to int) ([]byte, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	keep := map[string]bool{}
	for _, id := range t.order {
		s := t.spans[id]
		end := s.EndPeriod
		if s.Open() {
			end = int(^uint(0) >> 1) // open: no upper bound
		}
		if s.Period > to && to >= 0 {
			continue
		}
		if end < from {
			continue
		}
		keep[id] = true
		for p := s.Parent; p != "" && !keep[p]; {
			keep[p] = true
			ps := t.spans[p]
			if ps == nil {
				break
			}
			p = ps.Parent
		}
	}
	nodes := map[string]*treeNode{}
	var roots []*treeNode
	for _, id := range t.order {
		if !keep[id] {
			continue
		}
		s := t.spans[id]
		n := &treeNode{Span: *s}
		nodes[id] = n
		if parent := nodes[s.Parent]; parent != nil {
			parent.Children = append(parent.Children, n)
		} else {
			roots = append(roots, n)
		}
	}
	if roots == nil {
		roots = []*treeNode{}
	}
	return json.MarshalIndent(roots, "", " ")
}

// sortedNodeNames returns the tracked node names in order — the
// deterministic iteration idiom for the internal maps.
func (t *Tracer) sortedNodeNames() []string {
	names := make([]string, 0, len(t.nodes))
	for n := range t.nodes {
		//lint:ignore determinism names are sorted immediately below
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// OpenWindows reports the nodes with open cap/failsafe/fault/death
// windows, for tests and status rendering.
func (t *Tracer) OpenWindows() string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := ""
	for _, n := range t.sortedNodeNames() {
		o := t.nodes[n]
		if c := t.caps[n]; c != nil {
			out += fmt.Sprintf("%s:cap(%s) ", n, c.span.ID)
		}
		if o.failSafe != nil {
			out += fmt.Sprintf("%s:failsafe ", n)
		}
		if o.fault != nil {
			out += fmt.Sprintf("%s:fault ", n)
		}
		if o.dead != nil {
			out += fmt.Sprintf("%s:dead ", n)
		}
	}
	return out
}
