package provenance

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"repro/internal/flight"
)

// step runs one tracer barrier: a policy op applied at k, staged, a
// reallocation consuming it, and one cap change on node that settles
// at once. Returns the cap span's ID.
func step(t *testing.T, tr *Tracer, kind string, k int, node string, fromW, toW float64) string {
	t.Helper()
	op := tr.BeginPolicyOp(kind, k, node, "")
	tr.EndPolicyOp(op, k, true)
	tr.Stage(op)
	tr.BeginRealloc(k)
	id, parent := tr.CapChange(node, k, fromW, toW)
	if id == "" {
		t.Fatalf("cap change %s %g→%g below epsilon", node, fromW, toW)
	}
	if parent == "" {
		t.Fatal("cap change has no reallocation parent")
	}
	tr.ObserveNode(node, k, toW, false, false, nil)
	tr.EndStep(k)
	return id
}

func TestTracerLifecycle(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf})

	op := tr.BeginPolicyOp("budget", 4, "", "budget*5600")
	tr.EndPolicyOp(op, 4, true)
	tr.Stage(op)
	r := tr.BeginRealloc(4)
	capID, parent := tr.CapChange("n001", 4, 310, 268)
	if parent != r {
		t.Fatalf("cap parent %q, want the reallocation %q", parent, r)
	}
	// Not yet inside slack: stays open, then settles two periods later.
	tr.ObserveNode("n001", 4, 300, false, false, nil)
	tr.EndStep(4)
	tr.ObserveNode("n001", 5, 290, false, false, nil)
	tr.ObserveNode("n001", 6, 270, false, false, nil)
	tr.EndStep(6)
	if err := tr.Finish(6); err != nil {
		t.Fatal(err)
	}

	ld, err := LoadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	cap := ld.Span(capID)
	if cap == nil {
		t.Fatalf("cap span %s missing after round-trip", capID)
	}
	if cap.Outcome != OutcomeSettled || cap.SettlePeriods != 3 || cap.EndPeriod != 6 {
		t.Fatalf("cap span %+v, want settled in 3 periods at 6", cap)
	}
	chain := ld.Chain(capID)
	if len(chain) != 3 || chain[0].ID != op || chain[1].ID != r || chain[2].ID != capID {
		t.Fatalf("chain %v, want op→realloc→cap", chain)
	}
	if got := ld.RootClass(capID); got != "budget" {
		t.Fatalf("root class %q, want budget", got)
	}
	text := FormatChain(chain)
	for _, want := range []string{"budget@4", "reallocation r1@4", "cap 310→268 W", "settled in 3 period"} {
		if !strings.Contains(text, want) {
			t.Fatalf("chain %q missing %q", text, want)
		}
	}
}

func TestCapChangeEpsilonAndSupersede(t *testing.T) {
	tr := New(Config{})
	tr.BeginRealloc(0)
	if id, _ := tr.CapChange("n0", 0, 300, 300.2); id != "" {
		t.Fatalf("sub-epsilon move minted span %s", id)
	}
	first, _ := tr.CapChange("n0", 0, 300, 250)
	tr.EndStep(0)
	// Next barrier moves the cap again before the first settles.
	tr.BeginRealloc(2)
	second, _ := tr.CapChange("n0", 2, 250, 220)
	tr.ObserveNode("n0", 2, 219, false, false, nil)
	tr.EndStep(2)
	var f, s *Span
	for _, sp := range tr.Spans() {
		switch sp.ID {
		case first:
			f = sp
		case second:
			s = sp
		}
	}
	if f.Outcome != OutcomeSuperseded || f.EndPeriod != 2 {
		t.Fatalf("first cap %+v, want superseded at 2", f)
	}
	if s.Outcome != OutcomeSettled || s.SettlePeriods != 1 {
		t.Fatalf("second cap %+v, want settled in 1", s)
	}
}

func TestKillDeathRecoveryParents(t *testing.T) {
	tr := New(Config{})
	kill := tr.BeginPolicyOp("kill", 8, "n2", "")
	tr.EndPolicyOp(kill, 8, true)
	tr.RegisterKill("n2", kill)
	death := tr.NodeDead("n2", 10, 3)
	resv := tr.ReservationReleased("n2", 16)
	revive := tr.BeginPolicyOp("revive", 18, "n2", "")
	tr.EndPolicyOp(revive, 18, true)
	tr.RegisterRevive("n2", revive)
	rec := tr.NodeRecovered("n2", 20)
	tr.EndStep(20)

	byID := map[string]*Span{}
	for _, sp := range tr.Spans() {
		byID[sp.ID] = sp
	}
	if byID[death].Parent != kill {
		t.Fatalf("death parent %q, want the kill op", byID[death].Parent)
	}
	if byID[resv].Parent != death {
		t.Fatalf("reservation parent %q, want the death window", byID[resv].Parent)
	}
	if byID[rec].Parent != revive {
		t.Fatalf("recovery parent %q, want the revive op", byID[rec].Parent)
	}
	if byID[death].Outcome != OutcomeRecovered || byID[death].EndPeriod != 20 {
		t.Fatalf("death window %+v, want recovered at 20", byID[death])
	}
	// All three staged: the next reallocation consumes them in order.
	r := tr.BeginRealloc(20)
	var rsp *Span
	for _, sp := range tr.Spans() {
		if sp.ID == r {
			rsp = sp
		}
	}
	if rsp.Parent != death || len(rsp.Causes) != 3 {
		t.Fatalf("realloc %+v, want parent=death and 3 causes", rsp)
	}
}

func TestFailsafeFaultAndAlertWindows(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf})
	tr.ObserveNode("n0", 3, 200, true, false, []string{"meter-freeze", "hbm-throttle"})
	tr.OnAlertEvent("power_overage", "n0", 3, 1.07, true)
	tr.EndStep(3)
	tr.ObserveNode("n0", 7, 200, false, false, nil)
	tr.OnAlertEvent("power_overage", "n0", 7, 0.99, false)
	tr.EndStep(7)
	if err := tr.Finish(7); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var fs, fl, al *Span
	for _, sp := range ld.Spans {
		switch sp.Kind {
		case KindFailSafe:
			fs = sp
		case KindFault:
			fl = sp
		case KindAlert:
			al = sp
		}
	}
	if fs == nil || fs.Outcome != OutcomeExited || fs.EndPeriod != 7 {
		t.Fatalf("failsafe window %+v, want exited at 7", fs)
	}
	if fl == nil || fl.Detail != "meter-freeze,hbm-throttle" {
		t.Fatalf("fault window %+v, want joined fault detail", fl)
	}
	if al == nil || al.Outcome != OutcomeResolved || al.EndPeriod != 7 {
		t.Fatalf("alert window %+v, want resolved at 7", al)
	}
	if got := ld.RootClass(al.ID); got != "alert:power_overage" {
		t.Fatalf("alert root class %q", got)
	}
}

// TestFlushOrder pins the worker-invariance mechanism: alert-side
// mints queue separately and always flush after the coordinator-side
// mints of the same barrier, whatever order they happened in.
func TestFlushOrder(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf})
	// Alert fires first in wall-clock order...
	tr.OnAlertEvent("slo", "n1", 2, 1.2, true)
	tr.BeginRealloc(2)
	tr.EndStep(2)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d lines, want 2", len(lines))
	}
	// ...but the coordinator's reallocation line lands first.
	if !strings.Contains(lines[0], `"r1"`) || !strings.Contains(lines[1], "alert:") {
		t.Fatalf("flush order wrong: %v", lines)
	}
}

func TestUniqueIDAndRejectedOp(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf})
	a := tr.BeginPolicyOp("join", 6, "", "heavy")
	tr.EndPolicyOp(a, 6, true)
	b := tr.BeginPolicyOp("join", 6, "", "light")
	tr.EndPolicyOp(b, 6, false)
	if a == b {
		t.Fatalf("duplicate op IDs: %s", a)
	}
	tr.EndStep(6)
	if err := tr.Finish(6); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if sp := ld.Span(b); sp == nil || sp.Outcome != OutcomeRejected {
		t.Fatalf("second op %+v, want rejected", sp)
	}
}

type failWriter struct{ n int }

func (w *failWriter) Write(p []byte) (int, error) {
	w.n++
	if w.n > 1 {
		return 0, errors.New("disk full")
	}
	return len(p), nil
}

func TestStickyWriteError(t *testing.T) {
	tr := New(Config{JSONL: &failWriter{}})
	for k := 0; k < 3; k++ {
		tr.BeginRealloc(k * 2)
		tr.CapChange("n0", k*2, 300, 300+float64(k+1)*50)
		tr.EndStep(k * 2)
	}
	if err := tr.Err(); err == nil || !strings.Contains(err.Error(), "disk full") {
		t.Fatalf("Err() = %v, want the first write error", err)
	}
	if err := tr.Finish(6); err == nil {
		t.Fatal("Finish swallowed the sticky write error")
	}
}

func TestFinishClosesOpenSpans(t *testing.T) {
	tr := New(Config{})
	tr.BeginRealloc(0)
	tr.CapChange("n0", 0, 300, 250)
	tr.NodeDead("n1", 0, 3)
	tr.EndStep(0)
	if err := tr.Finish(9); err != nil {
		t.Fatal(err)
	}
	for _, sp := range tr.Spans() {
		if sp.Open() {
			t.Fatalf("span %s still open after Finish", sp.ID)
		}
		if sp.ID[0] == 'c' || sp.ID[0] == 'd' {
			if sp.Outcome != OutcomeRunEnd || sp.EndPeriod != 9 {
				t.Fatalf("span %+v, want run-end at 9", sp)
			}
		}
	}
}

func TestSpanTreesJSONRange(t *testing.T) {
	tr := New(Config{})
	step(t, tr, "budget", 2, "n0", 300, 250)
	step(t, tr, "cap", 40, "n1", 300, 200)
	b, err := tr.SpanTreesJSON(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	var trees []treeNode
	if err := json.Unmarshal(b, &trees); err != nil {
		t.Fatal(err)
	}
	if len(trees) != 1 {
		t.Fatalf("%d trees in [0,10], want 1", len(trees))
	}
	if trees[0].Kind != KindPolicyOp || len(trees[0].Children) != 1 || len(trees[0].Children[0].Children) != 1 {
		t.Fatalf("tree shape wrong: %+v", trees[0])
	}
	// An open-ended range sees both roots.
	b, err = tr.SpanTreesJSON(0, -1)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(b, &trees); err != nil {
		t.Fatal(err)
	}
	if len(trees) != 2 {
		t.Fatalf("%d trees unbounded, want 2", len(trees))
	}
}

func TestLoadTraceErrors(t *testing.T) {
	if _, err := LoadTrace(strings.NewReader(`{"rec":"span","id":"a","kind":"x"}` + "\n" + `{"rec":"span","id":"a","kind":"x"}` + "\n")); err == nil {
		t.Fatal("duplicate span accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"rec":"bogus","id":"a"}` + "\n")); err == nil {
		t.Fatal("unknown record kind accepted")
	}
	if _, err := LoadTrace(strings.NewReader(`{"rec":"close","id":"ghost"}` + "\n")); err == nil {
		t.Fatal("close for unknown span accepted")
	}
}

func TestAttributionAndVerify(t *testing.T) {
	var buf bytes.Buffer
	tr := New(Config{JSONL: &buf})
	capID := step(t, tr, "budget", 0, "n0", 300, 250)
	if err := tr.Finish(3); err != nil {
		t.Fatal(err)
	}
	ld, err := LoadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	parent := ld.Span(capID).Parent
	recs := []flight.DecisionRecord{
		{Period: 0, SetpointW: 300, TruePowerW: 290, CauseID: "", ParentID: ""},
		{Period: 1, SetpointW: 250, TruePowerW: 249, CauseID: capID, ParentID: parent},
		{Period: 2, SetpointW: 250, TruePowerW: 248, CauseID: capID, ParentID: parent},
	}
	if probs := ld.VerifyAttribution("n0", recs, DefaultEpsilonW); len(probs) != 0 {
		t.Fatalf("clean stream flagged: %v", probs)
	}
	rows := ld.Attribution(map[string][]flight.DecisionRecord{"n0": recs}, 4)
	got := map[string]AttributionRow{}
	for _, r := range rows {
		got[r.Class] = r
	}
	if r := got["budget"]; r.Periods != 2 || r.CapChanges != 1 {
		t.Fatalf("budget row %+v, want 2 periods / 1 change", r)
	}
	if r := got[ClassInitial]; r.Periods != 1 {
		t.Fatalf("initial row %+v, want 1 period", r)
	}
	table := FormatAttribution(rows)
	if !strings.Contains(table, "budget") || !strings.Contains(table, "total") {
		t.Fatalf("table missing rows:\n%s", table)
	}

	// Every corruption the verifier must catch.
	for name, mut := range map[string]func(r []flight.DecisionRecord){
		"missing cause":   func(r []flight.DecisionRecord) { r[1].CauseID = "" },
		"stale cause":     func(r []flight.DecisionRecord) { r[1].CauseID = r[0].CauseID },
		"unknown span":    func(r []flight.DecisionRecord) { r[1].CauseID = "cap:ghost@1" },
		"wrong parent":    func(r []flight.DecisionRecord) { r[1].ParentID = "r99" },
		"cause from past": func(r []flight.DecisionRecord) { r[1].Period = -1 },
	} {
		bad := make([]flight.DecisionRecord, len(recs))
		copy(bad, recs)
		mut(bad)
		if probs := ld.VerifyAttribution("n0", bad, DefaultEpsilonW); len(probs) == 0 {
			t.Errorf("%s not flagged", name)
		}
	}
}
