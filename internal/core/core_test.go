package core

import (
	"math"
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

// testRig builds a 3-GPU server with standard workloads and an
// identified model.
func testRig(t *testing.T, seed int64) (*sim.Server, *sysid.Model, []*sysid.LatencyModel) {
	t.Helper()
	build := func(sd int64) *sim.Server {
		s, err := sim.NewServer(sim.DefaultTestbed(sd))
		if err != nil {
			t.Fatal(err)
		}
		zoo := workload.Zoo()
		names := []string{"resnet50", "swin_t", "vgg16"}
		rates := []float64{250, 100, 130}
		for i := 0; i < 3; i++ {
			p, err := workload.NewPipeline(workload.PipelineConfig{
				Model: zoo[names[i]], Workers: 2, PreLatencyBase: 0.005,
				PreLatencyExp: 0.4, ArrivalRateMax: rates[i], ArrivalExp: 0.5,
				QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: sd + int64(i),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AttachPipeline(i, p); err != nil {
				t.Fatal(err)
			}
		}
		w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{
			RateAtMax: 40, FcMax: 2.4, NoiseStd: 0.02, Seed: sd + 9})
		if err != nil {
			t.Fatal(err)
		}
		s.AttachCPUWorkload(w)
		return s
	}
	twin := build(seed + 1000)
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	zoo := workload.Zoo()
	lms := []*sysid.LatencyModel{
		{EMin: zoo["resnet50"].EMinBatch, Gamma: 0.91, FMax: 1350},
		{EMin: zoo["swin_t"].EMinBatch, Gamma: 0.91, FMax: 1350},
		{EMin: zoo["vgg16"].EMinBatch, Gamma: 0.91, FMax: 1350},
	}
	return build(seed), model, lms
}

func TestNewCapGPUValidation(t *testing.T) {
	s, model, lms := testRig(t, 1)
	bad := &sysid.Model{Gains: []float64{1, 2}}
	if _, err := NewCapGPU(bad, s, nil, Options{}); err == nil {
		t.Fatal("expected gain-count error")
	}
	if _, err := NewCapGPU(model, s, lms[:2], Options{}); err == nil {
		t.Fatal("expected latency-model-count error")
	}
	if _, err := NewCapGPU(model, s, lms, Options{FilterAlpha: 2}); err == nil {
		t.Fatal("expected filter-alpha error")
	}
	if _, err := NewCapGPU(model, s, lms, Options{MoveGain: 1.5}); err == nil {
		t.Fatal("expected move-gain error")
	}
	if _, err := NewCapGPU(model, s, lms, Options{SLOMargin: 1.5}); err == nil {
		t.Fatal("expected slo-margin error")
	}
	c, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if c.Name() != "CapGPU" {
		t.Fatalf("name = %q", c.Name())
	}
	if c.MPC() == nil {
		t.Fatal("MPC accessor nil")
	}
}

func TestNewHarnessValidation(t *testing.T) {
	s, model, lms := testRig(t, 2)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewHarness(s, ctrl, nil); err == nil {
		t.Fatal("expected nil-setpoint error")
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	if h.PeriodSeconds != 4 {
		t.Fatalf("default period = %d, want 4 (paper T)", h.PeriodSeconds)
	}
	h.PeriodSeconds = 0
	if _, err := h.Run(1); err == nil {
		t.Fatal("expected invalid-period error")
	}
}

func TestHarnessConvergesToSetpoint(t *testing.T) {
	s, model, lms := testRig(t, 3)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	recs, err := h.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 60 {
		t.Fatalf("records = %d", len(recs))
	}
	var tail []float64
	for _, r := range recs[20:] {
		tail = append(tail, r.AvgPowerW)
	}
	mean := metrics.Mean(tail)
	if math.Abs(mean-900) > 15 {
		t.Fatalf("steady-state mean %g, want ~900", mean)
	}
	// Records must be internally consistent.
	for _, r := range recs {
		if r.AvgPowerW <= 0 || r.MaxPowerW < r.AvgPowerW-50 {
			t.Fatalf("period %d: implausible power (avg %g, max %g)", r.Period, r.AvgPowerW, r.MaxPowerW)
		}
		if len(r.GPUFreqMHz) != 3 || len(r.GPUThroughput) != 3 {
			t.Fatalf("period %d: wrong GPU vector sizes", r.Period)
		}
		if r.CPUThroughput <= 0 {
			t.Fatalf("period %d: no CPU throughput", r.Period)
		}
	}
}

func TestHarnessDeterministic(t *testing.T) {
	run := func() []float64 {
		s, model, lms := testRig(t, 4)
		ctrl, err := NewCapGPU(model, s, lms, Options{})
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHarness(s, ctrl, func(int) float64 { return 950 })
		if err != nil {
			t.Fatal(err)
		}
		recs, err := h.Run(20)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, len(recs))
		for i, r := range recs {
			out[i] = r.AvgPowerW
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("period %d differs: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestHarnessSetpointSchedule(t *testing.T) {
	s, model, lms := testRig(t, 5)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sched := func(k int) float64 {
		if k < 20 {
			return 850
		}
		return 950
	}
	h, err := NewHarness(s, ctrl, sched)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := h.Run(45)
	if err != nil {
		t.Fatal(err)
	}
	var before, after []float64
	for _, r := range recs {
		if r.Period >= 10 && r.Period < 20 {
			before = append(before, r.AvgPowerW)
		}
		if r.Period >= 35 {
			after = append(after, r.AvgPowerW)
		}
	}
	if math.Abs(metrics.Mean(before)-850) > 15 {
		t.Fatalf("pre-step mean %g, want ~850", metrics.Mean(before))
	}
	if math.Abs(metrics.Mean(after)-950) > 15 {
		t.Fatalf("post-step mean %g, want ~950", metrics.Mean(after))
	}
}

func TestCapGPUSLOFloorsHold(t *testing.T) {
	s, model, lms := testRig(t, 6)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 1000 })
	if err != nil {
		t.Fatal(err)
	}
	// Tight SLO on GPU 0 (1.3x its best latency), loose on the others.
	slos := []float64{lms[0].EMin * 1.3, lms[1].EMin * 4, lms[2].EMin * 4}
	h.SLOs = func(int) []float64 { return slos }
	recs, err := h.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for _, r := range recs[15:] {
		if r.SLOMiss[0] {
			misses++
		}
	}
	if misses > 2 {
		t.Fatalf("GPU 0 missed its SLO in %d/35 steady periods", misses)
	}
}

// asymmetricRig builds a server where GPU 2 has no workload, the
// scenario where throughput-driven weight assignment pays off.
func asymmetricRig(t *testing.T, seed int64) *sim.Server {
	t.Helper()
	s, err := sim.NewServer(sim.DefaultTestbed(seed))
	if err != nil {
		t.Fatal(err)
	}
	zoo := workload.Zoo()
	cfgs := []workload.PipelineConfig{
		{Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.005, PreLatencyExp: 0.4,
			ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 1},
		{Model: zoo["swin_t"], Workers: 2, PreLatencyBase: 0.01, PreLatencyExp: 0.4,
			ArrivalRateMax: 100, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: seed + 2},
	}
	for i, cfg := range cfgs {
		p, err := workload.NewPipeline(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.AttachPipeline(i, p); err != nil {
			t.Fatal(err)
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: seed + 9})
	if err != nil {
		t.Fatal(err)
	}
	s.AttachCPUWorkload(w)
	return s
}

func TestCapGPUWeightsParkIdleGPU(t *testing.T) {
	// The weight-assignment algorithm should throttle a workload-less
	// GPU (its normalized throughput is 0, so its control penalty is
	// maximal) and redirect the freed power to the busy devices — the
	// core claim of the paper's §4.3 weight design.
	twin := asymmetricRig(t, 1100)
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	run := func(uniform bool) (idleFreq, busyTput float64) {
		s := asymmetricRig(t, 42)
		opts := Options{}
		opts.MPC.UniformWeights = uniform
		ctrl, err := NewCapGPU(model, s, nil, opts)
		if err != nil {
			t.Fatal(err)
		}
		h, err := NewHarness(s, ctrl, func(int) float64 { return 850 })
		if err != nil {
			t.Fatal(err)
		}
		recs, err := h.Run(80)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs[40:] {
			idleFreq += r.GPUFreqMHz[2]
			busyTput += r.GPUThroughput[0] + r.GPUThroughput[1]
		}
		n := float64(len(recs) - 40)
		return idleFreq / n, busyTput / n
	}
	wIdle, wTput := run(false)
	uIdle, uTput := run(true)
	if wIdle >= uIdle-50 {
		t.Fatalf("weighted idle-GPU clock %g should sit well below uniform %g", wIdle, uIdle)
	}
	if wTput <= uTput {
		t.Fatalf("weighted busy throughput %g should beat uniform %g", wTput, uTput)
	}
}

func TestDecisionFallbackOnDegenerateObservation(t *testing.T) {
	s, model, lms := testRig(t, 8)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// An observation with mismatched GPU count must not panic; the MPC
	// rejects it and the controller holds the current operating point.
	obs := Observation{
		AvgPowerW:  900,
		SetpointW:  900,
		CPUFreqGHz: 1.5,
		GPUFreqMHz: []float64{800, 800}, // wrong count (server has 3)
	}
	dec := ctrl.Decide(obs)
	if dec.CPUFreqGHz != 1.5 || len(dec.GPUFreqMHz) != 2 {
		t.Fatalf("fallback decision should hold the point: %+v", dec)
	}
}

func TestCapGPUOnHeterogeneousServer(t *testing.T) {
	// End to end on a mixed V100 + A100 box: identification, control,
	// convergence — exercising per-device gains and ranges.
	build := func(seed int64) *sim.Server {
		cfg := sim.Config{
			CPU:        sim.XeonGold5215(),
			GPUs:       []sim.GPUSpec{sim.TeslaV100(), sim.A100()},
			OtherW:     220,
			MeasNoiseW: 2,
			DriftStdW:  8,
			Seed:       seed,
		}
		s, err := sim.NewServer(cfg)
		if err != nil {
			t.Fatal(err)
		}
		zoo := workload.Zoo()
		for i, name := range []string{"resnet50", "swin_t"} {
			p, err := workload.NewPipeline(workload.PipelineConfig{
				Model: zoo[name], Workers: 1, PreLatencyBase: 0.005, PreLatencyExp: 0.4,
				ArrivalRateMax: 150, ArrivalExp: 0.5, QueueCap: 60,
				FcMax: 2.4, FgMax: cfg.GPUs[i].FreqMaxMHz, Seed: seed + int64(i),
			})
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AttachPipeline(i, p); err != nil {
				t.Fatal(err)
			}
		}
		w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: seed + 9})
		if err != nil {
			t.Fatal(err)
		}
		s.AttachCPUWorkload(w)
		return s
	}
	twin := build(900)
	model, _, err := sysid.Identify(twin, sysid.ExciteConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(model.Gains) != 3 {
		t.Fatalf("gains: %v", model.Gains)
	}
	s := build(7)
	ctrl, err := NewCapGPU(model, s, nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 750 })
	if err != nil {
		t.Fatal(err)
	}
	recs, err := h.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	var tail []float64
	for _, r := range recs[30:] {
		tail = append(tail, r.AvgPowerW)
		if r.GPUFreqMHz[0] < 435-1e-9 || r.GPUFreqMHz[1] < 210-1e-9 {
			t.Fatalf("period %d: device floors violated: %v", r.Period, r.GPUFreqMHz)
		}
	}
	if m := metrics.Mean(tail); math.Abs(m-750) > 12 {
		t.Fatalf("heterogeneous steady mean %g, want ~750", m)
	}
}
