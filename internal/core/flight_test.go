package core

import (
	"testing"

	"repro/internal/flight"
)

// TestHarnessFlightRecording pins the flight wiring: with a recorder
// attached, every period yields a DecisionRecord whose controller trace
// carries the model, prediction, and per-knob constraint state.
func TestHarnessFlightRecording(t *testing.T) {
	s, model, lms := testRig(t, 11)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	rec := flight.NewRecorder(flight.Config{})
	h.SetFlight(rec)
	recs, err := h.Run(20)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Total() != 20 {
		t.Fatalf("recorded %d periods, want 20", rec.Total())
	}
	frecs := rec.Records()
	for i, fr := range frecs {
		pr := recs[i]
		if fr.Period != pr.Period || fr.SetpointW != pr.SetpointW {
			t.Fatalf("record %d misaligned: flight %d/%.0f vs harness %d/%.0f",
				i, fr.Period, fr.SetpointW, pr.Period, pr.SetpointW)
		}
		if fr.MeasuredW != pr.AvgPowerW || fr.TruePowerW != pr.TrueAvgPowerW {
			t.Fatalf("record %d power mismatch: %.2f/%.2f vs %.2f/%.2f",
				i, fr.MeasuredW, fr.TruePowerW, pr.AvgPowerW, pr.TrueAvgPowerW)
		}
		if fr.Controller == nil {
			t.Fatalf("record %d has no controller trace on a healthy CapGPU period", i)
		}
		ct := fr.Controller
		if len(ct.Gains) != 4 || len(ct.Knobs) != 4 {
			t.Fatalf("record %d trace shape: %d gains, %d knobs, want 4 each", i, len(ct.Gains), len(ct.Knobs))
		}
		if ct.Solver == "" {
			t.Fatalf("record %d missing solver attribution", i)
		}
		for k, kc := range ct.Knobs {
			if kc.WeightR <= 0 {
				t.Fatalf("record %d knob %d weight R = %.3f, want > 0", i, k, kc.WeightR)
			}
		}
		if i > 0 && !fr.HaveOneStepErr {
			t.Fatalf("record %d not scored against the previous prediction", i)
		}
	}
}

// TestSetFlightTogglesTrace verifies detaching the recorder also turns
// trace building (and the MPC detail diagnostics) back off.
func TestSetFlightTogglesTrace(t *testing.T) {
	s, model, lms := testRig(t, 12)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{AvgPowerW: 950, SetpointW: 900, CPUFreqGHz: 2.0,
		GPUFreqMHz:        []float64{1200, 1100, 1000},
		CPUThroughputNorm: 0.8, GPUThroughputNorm: []float64{0.9, 0.7, 0.5}}
	if d := ctrl.Decide(obs); d.Flight != nil {
		t.Fatal("trace built with flight recording off")
	}
	h.SetFlight(flight.NewRecorder(flight.Config{}))
	if d := ctrl.Decide(obs); d.Flight == nil {
		t.Fatal("no trace with flight recording on")
	}
	h.SetFlight(nil)
	if d := ctrl.Decide(obs); d.Flight != nil {
		t.Fatal("trace still built after detaching the recorder")
	}
}

// TestDecideZeroAllocGrowthWhenFlightOff pins the acceptance criterion:
// a disabled flight recorder adds zero allocations to the control loop.
// The trace-building path necessarily allocates; the default path must
// not change.
func TestDecideZeroAllocGrowthWhenFlightOff(t *testing.T) {
	s, model, lms := testRig(t, 13)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	obs := Observation{AvgPowerW: 950, SetpointW: 900, CPUFreqGHz: 2.0,
		GPUFreqMHz:        []float64{1200, 1100, 1000},
		CPUThroughputNorm: 0.8, GPUThroughputNorm: []float64{0.9, 0.7, 0.5}}
	decide := func() { ctrl.Decide(obs) }
	decide() // warm the MPC warm-start buffer
	base := testing.AllocsPerRun(200, decide)

	// Enable and disable again: the off path must return to baseline —
	// no lingering per-period cost from having been instrumented.
	ctrl.SetFlightRecording(true)
	withFlight := testing.AllocsPerRun(200, decide)
	ctrl.SetFlightRecording(false)
	after := testing.AllocsPerRun(200, decide)
	if after > base {
		t.Fatalf("flight-off Decide allocations grew: %.0f before, %.0f after instrumentation", base, after)
	}
	if withFlight <= base {
		t.Logf("flight trace costs no extra allocations (%.0f vs %.0f)", withFlight, base)
	}
}
