package core

import (
	"math"
	"reflect"
	"testing"

	"repro/internal/faults"
	"repro/internal/metrics"
)

// capHarness builds a CapGPU harness at a fixed 900 W set point with
// the given fault schedule attached.
func capHarness(t *testing.T, seed int64, sched *faults.Schedule) *Harness {
	t.Helper()
	s, model, lms := testRig(t, seed)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	h.Faults = sched
	return h
}

// violations counts periods whose true (breaker-side) average exceeded
// the cap by more than 2% — the violation definition the R1 robustness
// experiment uses.
func violations(recs []PeriodRecord, cap float64) int {
	n := 0
	for _, r := range recs {
		if r.TrueAvgPowerW > cap*1.02 {
			n++
		}
	}
	return n
}

// TestHarnessFaultDropoutFailSafeRecovery is the acceptance scenario: a
// 10-period total meter dropout under a 900 W CapGPU loop. Graceful
// degradation must ride the last good value, enter fail-safe descent
// after 3 blind periods, never violate the cap while blind, and resume
// tracking within 10 periods of the meter returning.
func TestHarnessFaultDropoutFailSafeRecovery(t *testing.T) {
	sched, err := faults.Parse("meter-dropout@30+10", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := capHarness(t, 31, sched)
	recs, err := h.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	// Degradation bookkeeping across the blind window.
	for k := 30; k < 40; k++ {
		r := recs[k]
		if !r.Degraded {
			t.Fatalf("period %d: not marked degraded", k)
		}
		if r.MeterStale != k-30+1 {
			t.Fatalf("period %d: stale = %d, want %d", k, r.MeterStale, k-30+1)
		}
		if want := k-30+1 >= 3; r.FailSafe != want {
			t.Fatalf("period %d: failsafe = %v, want %v", k, r.FailSafe, want)
		}
		if r.AvgPowerW <= 0 {
			t.Fatalf("period %d: fed controller %g W while blind", k, r.AvgPowerW)
		}
		if len(r.Faults) == 0 {
			t.Fatalf("period %d: active fault not recorded", k)
		}
	}
	if recs[40].Degraded || recs[40].MeterStale != 0 {
		t.Fatalf("period 40: degradation did not clear on recovery: %+v", recs[40])
	}
	// Zero cap violations across the dropout (and its descent tail).
	if n := violations(recs[30:45], 900); n != 0 {
		t.Fatalf("%d cap violations during/after blind window", n)
	}
	// Fail-safe descent actually cut power while blind.
	if recs[39].TrueAvgPowerW >= recs[30].TrueAvgPowerW-50 {
		t.Fatalf("fail-safe did not descend: period 30 %g W -> period 39 %g W",
			recs[30].TrueAvgPowerW, recs[39].TrueAvgPowerW)
	}
	// Recovery: back to tracking within 10 periods of the meter's return.
	var tail []float64
	for _, r := range recs[50:] {
		tail = append(tail, r.AvgPowerW)
	}
	if mean := metrics.Mean(tail); mean < 870 || mean > 930 {
		t.Fatalf("post-recovery mean %g W did not resume tracking 900 W", mean)
	}
}

// TestHarnessNoDegradeViolatesCap is the strawman half of the
// acceptance criterion: with the fallback disabled the same dropout
// feeds the controller 0 W, clocks slam up, and the cap is violated.
func TestHarnessNoDegradeViolatesCap(t *testing.T) {
	sched, err := faults.Parse("meter-dropout@30+10", 7)
	if err != nil {
		t.Fatal(err)
	}
	h := capHarness(t, 31, sched)
	h.Degrade.Disable = true
	recs, err := h.Run(45)
	if err != nil {
		t.Fatal(err)
	}
	if n := violations(recs[30:40], 900); n == 0 {
		t.Fatal("disabled fallback should demonstrably violate the cap during dropout")
	}
	for k := 30; k < 40; k++ {
		if recs[k].FailSafe {
			t.Fatalf("period %d: fail-safe engaged despite Disable", k)
		}
	}
}

// TestHarnessFaultDeterminism: same schedule + seed (including the
// stochastic spike placement and probabilistic command loss) must yield
// bit-identical record streams.
func TestHarnessFaultDeterminism(t *testing.T) {
	dsl := "meter-spike@5+8*300;actuator-loss@10+6:gpu1*0.5;meter-dropout@20+4"
	mk := func() []PeriodRecord {
		sched, err := faults.Parse(dsl, 99)
		if err != nil {
			t.Fatal(err)
		}
		h := capHarness(t, 17, sched)
		recs, err := h.Run(30)
		if err != nil {
			t.Fatal(err)
		}
		return recs
	}
	a, b := mk(), mk()
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identical schedule+seed produced different PeriodRecord streams")
	}
}

// TestHarnessSpikeTrimmed: the robust (trimmed-mean) average keeps a
// single ±300 W corrupted sample from steering the feedback.
func TestHarnessSpikeTrimmed(t *testing.T) {
	sched, err := faults.Parse("meter-spike@10+5*300", 3)
	if err != nil {
		t.Fatal(err)
	}
	h := capHarness(t, 13, sched)
	recs, err := h.Run(16)
	if err != nil {
		t.Fatal(err)
	}
	for k := 10; k < 15; k++ {
		r := recs[k]
		// A 4-sample window with one ±300 W outlier would pull a plain
		// mean by 75 W; the trimmed mean must stay near the truth.
		if d := math.Abs(r.AvgPowerW - r.TrueAvgPowerW); d > 30 {
			t.Fatalf("period %d: spike leaked into feedback: avg %g vs true %g",
				k, r.AvgPowerW, r.TrueAvgPowerW)
		}
	}
}

// TestHarnessStuckMeterDetected: a wedged meter repeating its last
// value must be recognized as blind, not believed.
func TestHarnessStuckMeterDetected(t *testing.T) {
	sched, err := faults.Parse("meter-stuck@12+6", 5)
	if err != nil {
		t.Fatal(err)
	}
	h := capHarness(t, 19, sched)
	recs, err := h.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	for k := 12; k < 18; k++ {
		if !recs[k].Degraded {
			t.Fatalf("period %d: stuck meter not detected", k)
		}
	}
	if recs[18].Degraded {
		t.Fatal("degradation did not clear after the meter unstuck")
	}
}

// TestHarnessActuatorLossFlagged: a knob whose commands are always lost
// must be retried, then flagged diverged — without failing the loop.
func TestHarnessActuatorLossFlagged(t *testing.T) {
	sched, err := faults.Parse("actuator-loss@8+4:gpu0", 11)
	if err != nil {
		t.Fatal(err)
	}
	h := capHarness(t, 23, sched)
	// Step the cap down when the fault begins: the controller must move
	// the clocks, so the lost commands cannot hide in a converged
	// steady state where command == held frequency.
	h.Setpoint = func(k int) float64 {
		if k >= 8 {
			return 780
		}
		return 900
	}
	recs, err := h.Run(14)
	if err != nil {
		t.Fatal(err)
	}
	sawDiverged, sawRetry := false, false
	for k := 8; k < 12; k++ {
		r := recs[k]
		if len(r.ActuatorDiverged) == 4 && r.ActuatorDiverged[1] {
			sawDiverged = true
		}
		if r.ActuatorRetries > 0 {
			sawRetry = true
		}
		if r.ActuatorDiverged[0] || r.ActuatorDiverged[2] || r.ActuatorDiverged[3] {
			t.Fatalf("period %d: untargeted knob flagged diverged", k)
		}
	}
	// Divergence only shows when the delta-sigma command differs from
	// the held frequency; across 4 periods of a closed loop that must
	// happen at least once.
	if !sawDiverged || !sawRetry {
		t.Fatalf("command loss not surfaced: diverged=%v retries=%v", sawDiverged, sawRetry)
	}
	if recs[13].ActuatorDiverged[1] {
		t.Fatal("divergence flag did not clear after the fault window")
	}
}

// TestHarnessGPUFailDetachRestore: a failed GPU serves nothing and pins
// to f_min; recovery re-attaches its pipeline and work resumes.
func TestHarnessGPUFailDetachRestore(t *testing.T) {
	sched, err := faults.Parse("gpu-fail@10+5:gpu1", 29)
	if err != nil {
		t.Fatal(err)
	}
	h := capHarness(t, 37, sched)
	recs, err := h.Run(25)
	if err != nil {
		t.Fatal(err)
	}
	gmin, _ := h.Bank.Mod(2).Range()
	for k := 11; k < 15; k++ {
		r := recs[k]
		if r.GPUThroughput[1] != 0 {
			t.Fatalf("period %d: failed GPU still served %g img/s", k, r.GPUThroughput[1])
		}
		if r.GPUFreqMHz[1] != gmin {
			t.Fatalf("period %d: failed GPU at %g MHz, want f_min %g", k, r.GPUFreqMHz[1], gmin)
		}
	}
	served := 0.0
	for _, r := range recs[16:] {
		served += r.GPUThroughput[1]
	}
	if served == 0 {
		t.Fatal("pipeline did not resume after GPU recovery")
	}
}

// TestHarnessGPUDerateClamped: a derated GPU never runs above the
// derated ceiling while the fault is active.
func TestHarnessGPUDerateClamped(t *testing.T) {
	sched, err := faults.Parse("gpu-derate@5+8:gpu0*0.5", 41)
	if err != nil {
		t.Fatal(err)
	}
	h := capHarness(t, 43, sched)
	recs, err := h.Run(15)
	if err != nil {
		t.Fatal(err)
	}
	_, gmax := h.Bank.Mod(1).Range()
	for k := 6; k < 13; k++ {
		if f := recs[k].GPUFreqMHz[0]; f > 0.5*gmax+1e-9 {
			t.Fatalf("period %d: derated GPU ran at %g MHz > ceiling %g", k, f, 0.5*gmax)
		}
	}
}

// TestStepUncontrolled: an uncontrolled period keeps the workload
// running at frozen clocks and reports the true power it drew.
func TestStepUncontrolled(t *testing.T) {
	h := capHarness(t, 47, nil)
	if _, err := h.Run(5); err != nil {
		t.Fatal(err)
	}
	before := h.Server.CPUFreq()
	rec, err := h.StepUncontrolled(5)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Uncontrolled {
		t.Fatal("record not marked uncontrolled")
	}
	if rec.AvgPowerW != rec.TrueAvgPowerW || rec.TrueAvgPowerW <= 0 {
		t.Fatalf("uncontrolled power accounting wrong: %+v", rec)
	}
	if h.Server.CPUFreq() != before {
		t.Fatal("uncontrolled period moved a frequency")
	}
}
