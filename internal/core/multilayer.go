package core

import (
	"fmt"

	"repro/internal/sim"
)

// MultiLayer implements the paper's §4.4 future-work direction: when no
// combination of CPU/GPU frequencies can reach the power set point
// ("if no such combination exists, then no single control algorithm can
// strictly enforce the set point through frequency adaptation alone...
// additional system mechanisms (e.g., memory throttling) must be
// integrated"), a second actuation layer engages per-GPU memory-clock
// throttling.
//
// The layer is a slow supervisory loop around any inner PowerController:
// it watches for the signature of frequency-infeasibility — sustained
// over-cap power with every clock pinned at its minimum — and then
// throttles one GPU's memory clock at a time (lowest normalized
// throughput first, so the least productive device pays). When sustained
// headroom appears, throttles release one at a time, newest first, with
// hysteresis to prevent limit cycling between the layers.
type MultiLayer struct {
	Inner  PowerController
	server *sim.Server
	gains  []float64 // identified model gains (CPU first), for slack estimates

	// EngageAfter is how many consecutive infeasible periods trigger a
	// throttle (default 3); ReleaseAfter how many comfortable periods
	// release one (default 6). HeadroomW is the margin required before a
	// release (default: 1.5x the largest per-GPU throttle saving).
	EngageAfter  int
	ReleaseAfter int
	HeadroomW    float64

	overCount  int
	underCount int
	order      []int // engaged GPUs, in engagement order
}

// NewMultiLayer wraps an inner controller with the memory-throttle
// supervisory layer for the given server. gains is the identified power
// model's gain vector (CPU first), used to estimate how much downward
// frequency slack — in Watts — the inner layer holds.
func NewMultiLayer(inner PowerController, server *sim.Server, gains []float64) (*MultiLayer, error) {
	if inner == nil {
		return nil, fmt.Errorf("core: nil inner controller")
	}
	if server == nil {
		return nil, fmt.Errorf("core: nil server")
	}
	if len(gains) != 1+server.NumGPUs() {
		return nil, fmt.Errorf("core: %d gains for %d knobs", len(gains), 1+server.NumGPUs())
	}
	maxSave := 0.0
	for _, g := range server.Config().GPUs {
		if g.MemThrottleSaveW > maxSave {
			maxSave = g.MemThrottleSaveW
		}
	}
	if maxSave <= 0 {
		return nil, fmt.Errorf("core: server's GPUs expose no memory-throttle savings")
	}
	m := &MultiLayer{
		Inner:        inner,
		server:       server,
		gains:        append([]float64(nil), gains...),
		EngageAfter:  3,
		ReleaseAfter: 6,
		HeadroomW:    1.5 * maxSave,
	}
	return m, nil
}

// Name implements PowerController.
func (m *MultiLayer) Name() string { return m.Inner.Name() + " + mem-throttle" }

// ThrottledGPUs returns the indices of currently throttled GPUs.
func (m *MultiLayer) ThrottledGPUs() []int {
	return append([]int(nil), m.order...)
}

// Decide implements PowerController.
func (m *MultiLayer) Decide(obs Observation) Decision {
	dec := m.Inner.Decide(obs)

	// Infeasibility signature: over the cap while the inner controller
	// has nowhere lower to go.
	cfg := m.server.Config()
	atFloor := dec.CPUFreqGHz <= cfg.CPU.FreqMinGHz+cfg.CPU.FreqStepGHz/2
	for i, f := range dec.GPUFreqMHz {
		if i >= len(cfg.GPUs) {
			break
		}
		if f > cfg.GPUs[i].FreqMinMHz+cfg.GPUs[i].FreqStepMHz/2 {
			atFloor = false
		}
	}
	over := obs.AvgPowerW > obs.SetpointW+2

	// Downward frequency slack, in Watts: how much power the inner layer
	// could still shed by lowering clocks. A release hands the inner
	// layer back +save Watts, so it is only safe when the slack
	// comfortably exceeds the saving (otherwise the layers limit-cycle).
	slackW := m.gains[0] * (dec.CPUFreqGHz - cfg.CPU.FreqMinGHz)
	for i, f := range dec.GPUFreqMHz {
		if i < len(cfg.GPUs) {
			slackW += m.gains[1+i] * (f - cfg.GPUs[i].FreqMinMHz)
		}
	}
	// Release gating tolerates ordinary tracking noise (the ±few-Watt
	// wander around the cap); only a substantial over-cap condition
	// blocks it.
	nearCap := obs.AvgPowerW < obs.SetpointW+m.HeadroomW/2
	canRelease := len(m.order) > 0 && nearCap && slackW > m.HeadroomW

	if over && atFloor && len(m.order) < m.server.NumGPUs() {
		m.overCount++
		m.underCount = 0
		if m.overCount >= m.EngageAfter {
			m.engageOne(obs)
			m.overCount = 0
		}
	} else if canRelease {
		m.underCount++
		m.overCount = 0
		if m.underCount >= m.ReleaseAfter {
			m.releaseOne()
			m.underCount = 0
		}
	} else {
		m.overCount = 0
		m.underCount = 0
	}
	return dec
}

// engageOne throttles the not-yet-throttled GPU with the lowest
// normalized throughput (the least productive device pays first).
func (m *MultiLayer) engageOne(obs Observation) {
	engaged := map[int]bool{}
	for _, i := range m.order {
		engaged[i] = true
	}
	best, bestTput := -1, 0.0
	for i := 0; i < m.server.NumGPUs(); i++ {
		if engaged[i] {
			continue
		}
		tput := 0.0
		if i < len(obs.GPUThroughputNorm) {
			tput = obs.GPUThroughputNorm[i]
		}
		if best < 0 || tput < bestTput {
			best, bestTput = i, tput
		}
	}
	if best >= 0 {
		if err := m.server.SetMemThrottle(best, true); err == nil {
			m.order = append(m.order, best)
		}
	}
}

// releaseOne releases the most recently engaged throttle (LIFO keeps the
// engage/release ordering consistent under hysteresis).
func (m *MultiLayer) releaseOne() {
	if len(m.order) == 0 {
		return
	}
	last := m.order[len(m.order)-1]
	if err := m.server.SetMemThrottle(last, false); err == nil {
		m.order = m.order[:len(m.order)-1]
	}
}
