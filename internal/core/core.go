// Package core is the CapGPU framework (§3–§4): the control-loop harness
// that wires the power monitor, per-device throughput monitors,
// frequency modulators and a pluggable power controller around a GPU
// server, plus the CapGPU controller itself — the MIMO MPC with
// throughput-driven weight assignment and SLO constraints.
//
// Every baseline of §6.1 implements the same PowerController interface
// (see internal/baselines), so the experiment harness runs them
// identically: at the end of each control period T the harness feeds the
// controller the period-averaged power and normalized throughputs, and
// applies the controller's frequency decision through the delta-sigma
// modulators for the next period.
package core

import (
	"fmt"
	"math"

	"repro/internal/actuator"
	"repro/internal/mpc"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/sysid"
)

// Observation is what a power controller sees at the end of a control
// period.
type Observation struct {
	Period    int     // control period index (0-based)
	AvgPowerW float64 // meter average over the period (the feedback)
	SetpointW float64 // the cap P_s for the next period

	CPUFreqGHz float64 // applied during the period
	GPUFreqMHz []float64

	CPUThroughputNorm float64   // CPU workload throughput / its max
	GPUThroughputNorm []float64 // per-GPU inference throughput / its max
	CPUUtil           float64
	GPUUtil           []float64

	// DevicePowerW carries per-device readings (RAPL/NVML style) for
	// controllers that split the budget, like the CPU+GPU baseline.
	CPUPowerW float64
	GPUPowerW []float64

	// GPULatencyS is the period-average measured batch latency per GPU,
	// used by CapGPU's adaptive SLO floor correction.
	GPULatencyS []float64

	// SLOs holds the current per-GPU inference latency SLO in seconds
	// per batch (0 = no SLO).
	SLOs []float64
}

// Decision is a controller's target frequencies for the next period.
// Values may be fractional; the harness resolves them onto the hardware
// grids with delta-sigma modulation (§5).
type Decision struct {
	CPUFreqGHz float64
	GPUFreqMHz []float64
}

// PowerController is implemented by CapGPU and every baseline.
type PowerController interface {
	Name() string
	Decide(obs Observation) Decision
}

// Options tunes the CapGPU controller.
type Options struct {
	MPC mpc.Config
	// FilterAlpha is the EWMA coefficient applied to the period-average
	// power before it enters the MPC (p̂ = α·p + (1−α)·p̂). The meter
	// already averages the period's 1 s samples (§6.1). Default 1
	// (disabled): filtering lags step responses; MoveGain is the
	// preferred damping.
	FilterAlpha float64
	// MoveGain scales the applied fraction of the MPC's first move
	// (0 < β ≤ 1). β < 1 turns the near-deadbeat receding-horizon law
	// into a damped one (closed-loop pole ≈ 1−β), trading a slightly
	// longer settling time for much lower sensitivity to meter noise —
	// the same bandwidth trade the baselines make through pole
	// placement. Default 0.7.
	MoveGain float64
	// SLOMargin is the fractional safety margin applied when inverting
	// an SLO into a GPU frequency floor: the floor targets
	// (1−margin)·SLO, covering the latency model's residual (its fit is
	// R² ≈ 0.91, not perfect). Default 0.1; set negative to disable.
	SLOMargin float64
	// Adaptive enables online model adaptation: a recursive
	// least-squares estimator (warm-started from the identified model)
	// refines the plant gains every period, so the controller tracks
	// workload-induced gain changes — the §4.4 scenario — instead of
	// relying on its stability margin alone.
	Adaptive bool
	// Forgetting is the RLS forgetting factor when Adaptive is set
	// (default 0.98).
	Forgetting float64
}

// CapGPU is the paper's controller: MIMO MPC over [CPU, GPU...] with
// weight assignment and SLO-derived GPU frequency floors.
type CapGPU struct {
	ctrl           *mpc.Controller
	initial        *sysid.Model
	alpha          float64
	beta           float64 // applied fraction of the first MPC move
	sloMargin      float64
	filt           float64 // EWMA state
	seen           bool
	rls            *sysid.RLS // nil unless Options.Adaptive
	lastInnovation float64
	lastReg        []float64 // regressor at the last absorbed RLS update
	// floorBoost is the per-GPU multiplicative correction on the
	// SLO-derived frequency floor, adapted from measured latency: when a
	// GPU misses its SLO despite sitting at the model floor, the floor
	// rises until it holds (integral action against model bias).
	floorBoost []float64
	// latency models per GPU for inverting SLOs into frequency bounds
	// (Eq. 10b,c); nil entries mean no SLO handling for that GPU.
	latency []*sysid.LatencyModel
	fminC   float64
	fmaxC   float64
	fminG   []float64
	fmaxG   []float64
}

// NewCapGPU builds the controller from an identified power model (knob 0
// = CPU) and the server's frequency ranges. latencyModels has one entry
// per GPU and may contain nils.
func NewCapGPU(model *sysid.Model, server *sim.Server, latencyModels []*sysid.LatencyModel, opts Options) (*CapGPU, error) {
	ng := server.NumGPUs()
	if len(model.Gains) != 1+ng {
		return nil, fmt.Errorf("core: model has %d gains for a server with %d knobs", len(model.Gains), 1+ng)
	}
	if latencyModels != nil && len(latencyModels) != ng {
		return nil, fmt.Errorf("core: %d latency models for %d GPUs", len(latencyModels), ng)
	}
	cfg := server.Config()
	fmin := make([]float64, 1+ng)
	fmax := make([]float64, 1+ng)
	fmin[0], fmax[0] = cfg.CPU.FreqMinGHz, cfg.CPU.FreqMaxGHz
	for i := 0; i < ng; i++ {
		fmin[1+i], fmax[1+i] = cfg.GPUs[i].FreqMinMHz, cfg.GPUs[i].FreqMaxMHz
	}
	ctrl, err := mpc.New(model.Gains, fmin, fmax, opts.MPC)
	if err != nil {
		return nil, err
	}
	alpha := opts.FilterAlpha
	if alpha == 0 {
		alpha = 1
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: filter alpha %g outside (0, 1]", alpha)
	}
	beta := opts.MoveGain
	if beta == 0 {
		beta = 0.7
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("core: move gain %g outside (0, 1]", beta)
	}
	sloMargin := opts.SLOMargin
	if sloMargin == 0 {
		sloMargin = 0.1
	}
	if sloMargin < 0 {
		sloMargin = 0
	}
	if sloMargin >= 1 {
		return nil, fmt.Errorf("core: SLO margin %g must be below 1", sloMargin)
	}
	boost := make([]float64, ng)
	for i := range boost {
		boost[i] = 1
	}
	var rls *sysid.RLS
	if opts.Adaptive {
		forget := opts.Forgetting
		if forget == 0 {
			forget = 0.98
		}
		// The estimator works in normalized frequency coordinates
		// (each knob mapped to [0,1]) so the GHz/MHz scale disparity
		// does not destroy its conditioning; warm-start from the
		// offline model expressed in those coordinates.
		norm := &sysid.Model{Gains: make([]float64, 1+ng)}
		norm.Gains[0] = model.Gains[0] * (fmax[0] - fmin[0])
		norm.Offset = model.Offset + model.Gains[0]*fmin[0]
		for i := 0; i < ng; i++ {
			norm.Gains[1+i] = model.Gains[1+i] * (fmax[1+i] - fmin[1+i])
			norm.Offset += model.Gains[1+i] * fmin[1+i]
		}
		rls, err = sysid.NewRLS(1+ng, norm, forget, 10)
		if err != nil {
			return nil, err
		}
	}
	c := &CapGPU{
		ctrl:       ctrl,
		initial:    model,
		alpha:      alpha,
		beta:       beta,
		sloMargin:  sloMargin,
		floorBoost: boost,
		rls:        rls,
		latency:    latencyModels,
		fminC:      fmin[0],
		fmaxC:      fmax[0],
		fminG:      fmin[1:],
		fmaxG:      fmax[1:],
	}
	return c, nil
}

// Name implements PowerController.
func (c *CapGPU) Name() string { return "CapGPU" }

// MPC exposes the underlying controller (for stability analysis).
func (c *CapGPU) MPC() *mpc.Controller { return c.ctrl }

// ModelInnovation returns the adaptive estimator's last one-step power
// prediction error (0 when not adaptive or before the first update).
func (c *CapGPU) ModelInnovation() float64 { return c.lastInnovation }

// CurrentGains returns the gains the MPC is currently using.
func (c *CapGPU) CurrentGains() []float64 { return c.ctrl.Gains() }

// CurrentModel returns the controller's present power model in natural
// units: the RLS estimate when adaptive, otherwise the model it was
// built with.
func (c *CapGPU) CurrentModel() *sysid.Model {
	if c.rls != nil && c.rls.Count() > 3 {
		return c.denormModel()
	}
	return c.initial
}

// Decide implements PowerController: one MPC step.
func (c *CapGPU) Decide(obs Observation) Decision {
	// Online adaptation: the observation pairs the frequencies applied
	// during the period with the period's average power — exactly the
	// static-map sample p = A·F + C the estimator consumes. Two
	// safeguards keep closed-loop RLS honest: updates are gated on
	// genuine frequency excitation (steady-state dither carries no
	// identification value and lets thermal drift pollute the gains),
	// and the adapted gains are projected into the §4.4 trust region
	// around the offline model before they steer the MPC.
	if c.rls != nil && len(obs.GPUFreqMHz) == len(c.fminG) {
		f := c.normReg(obs.CPUFreqGHz, obs.GPUFreqMHz)
		if c.excited(f) {
			if innov, err := c.rls.Update(f, obs.AvgPowerW); err == nil {
				c.lastInnovation = innov
				c.lastReg = f
				// Let the estimate settle before steering the MPC.
				if c.rls.Count() > 3 {
					_ = c.ctrl.SetGains(c.projectGains(c.denormModel().Gains))
				}
			}
		}
	}
	if !c.seen {
		c.filt = obs.AvgPowerW
		c.seen = true
	} else {
		c.filt = c.alpha*obs.AvgPowerW + (1-c.alpha)*c.filt
	}
	ng := len(obs.GPUFreqMHz)
	freqs := make([]float64, 1+ng)
	freqs[0] = obs.CPUFreqGHz
	copy(freqs[1:], obs.GPUFreqMHz)

	tp := make([]float64, 1+ng)
	tp[0] = obs.CPUThroughputNorm
	copy(tp[1:], obs.GPUThroughputNorm)

	// SLO floors (Eq. 10b,c): invert each GPU's latency law with the
	// safety margin, then apply the adaptive correction learned from
	// measured latencies.
	lower := make([]float64, 1+ng)
	lower[0] = c.fminC
	for i := 0; i < ng; i++ {
		lower[1+i] = c.fminG[i]
		if c.latency == nil || c.latency[i] == nil || len(obs.SLOs) != ng || obs.SLOs[i] <= 0 {
			continue
		}
		lm := c.latency[i]
		slo := obs.SLOs[i]
		// Adapt the floor correction: a measured miss at (or above) the
		// current floor means the model under-predicts; raise the boost.
		// Comfortable headroom lets it decay back toward 1.
		atFloor := true
		if prev, err := mpc.SLOFrequencyBound(lm.EMin, lm.Gamma, lm.FMax, (1-c.sloMargin)*slo); err == nil {
			atFloor = obs.GPUFreqMHz[i] >= 0.98*math.Min(prev*c.floorBoost[i], c.fmaxG[i])
		}
		if len(obs.GPULatencyS) == ng && obs.GPULatencyS[i] > 0 {
			if obs.GPULatencyS[i] > slo && atFloor {
				// Missing while already at the model floor: the law
				// under-predicts; raise the correction.
				c.floorBoost[i] *= 1.05
			} else if obs.GPULatencyS[i] < 0.85*slo {
				c.floorBoost[i] = math.Max(1, c.floorBoost[i]*0.995)
			}
			if c.floorBoost[i] > 2 {
				c.floorBoost[i] = 2
			}
		}
		bound, err := mpc.SLOFrequencyBound(lm.EMin, lm.Gamma, lm.FMax, (1-c.sloMargin)*slo)
		if err != nil {
			continue
		}
		bound *= c.floorBoost[i]
		if bound > c.fmaxG[i] {
			bound = c.fmaxG[i]
		}
		if bound > lower[1+i] {
			lower[1+i] = bound
		}
	}

	d, _, err := c.ctrl.Compute(c.filt, obs.SetpointW, freqs, tp, lower)
	if err != nil {
		// Constraint conflicts (e.g. every GPU pinned by SLO floors with
		// the cap unreachable) degrade to holding the current point; the
		// paper notes such set points need mechanisms beyond DVFS (§4.4).
		return Decision{CPUFreqGHz: obs.CPUFreqGHz, GPUFreqMHz: append([]float64(nil), obs.GPUFreqMHz...)}
	}
	out := Decision{CPUFreqGHz: freqs[0] + c.beta*d[0], GPUFreqMHz: make([]float64, ng)}
	for i := 0; i < ng; i++ {
		out.GPUFreqMHz[i] = freqs[1+i] + c.beta*d[1+i]
	}
	return out
}

// normReg maps the applied frequencies into [0,1] per knob — the
// estimator's coordinates.
func (c *CapGPU) normReg(fc float64, fg []float64) []float64 {
	f := make([]float64, 1+len(fg))
	f[0] = (fc - c.fminC) / (c.fmaxC - c.fminC)
	for i := range fg {
		f[1+i] = (fg[i] - c.fminG[i]) / (c.fmaxG[i] - c.fminG[i])
	}
	return f
}

// denormModel converts the estimator's normalized-coordinate model back
// to natural units (W/GHz, W/MHz).
func (c *CapGPU) denormModel() *sysid.Model {
	nm := c.rls.Model()
	out := &sysid.Model{Gains: make([]float64, len(nm.Gains)), Offset: nm.Offset, N: nm.N}
	out.Gains[0] = nm.Gains[0] / (c.fmaxC - c.fminC)
	out.Offset -= out.Gains[0] * c.fminC
	for i := range c.fminG {
		out.Gains[1+i] = nm.Gains[1+i] / (c.fmaxG[i] - c.fminG[i])
		out.Offset -= out.Gains[1+i] * c.fminG[i]
	}
	return out
}

// excited reports whether the (normalized) regressor has moved enough
// since the last absorbed update to carry identification value (≥2% of
// range on average across the knobs).
func (c *CapGPU) excited(f []float64) bool {
	if c.lastReg == nil {
		return true
	}
	d := 0.0
	for i := range f {
		d += math.Abs(f[i] - c.lastReg[i])
	}
	return d/float64(len(f)) >= 0.02
}

// projectGains clamps adapted gains into [1/3x, 3x] of the offline
// model's — the gain-error region §4.4 certifies stable — so a bad
// stretch of data can degrade, but never destabilize, the controller.
func (c *CapGPU) projectGains(g []float64) []float64 {
	out := make([]float64, len(g))
	for i := range g {
		lo := c.initial.Gains[i] / 3
		hi := c.initial.Gains[i] * 3
		out[i] = math.Min(math.Max(g[i], lo), hi)
	}
	return out
}

// Harness runs a PowerController against a simulated server: the §3.1
// feedback loop (measure → decide → modulate → actuate).
type Harness struct {
	Server     *sim.Server
	Meter      *power.Meter
	Bank       *actuator.Bank
	Controller PowerController
	// PeriodSeconds is the control period T (paper: 4, with 1 s meter
	// sampling).
	PeriodSeconds int
	// Setpoint returns P_s for period k (enables Fig. 10's set-point
	// steps). Required.
	Setpoint func(period int) float64
	// SLOs returns the per-GPU latency SLOs for period k; nil for none
	// (enables Fig. 9's SLO changes).
	SLOs func(period int) []float64
	// OnPeriodStart, if set, runs before each control period — the hook
	// experiments use to inject workload changes or faults mid-run.
	OnPeriodStart func(period int, s *sim.Server)
	// MeterDropout, if set, reports whether the power meter loses period
	// k's samples entirely (fault injection). The loop then falls back
	// to the last good period average instead of feeding the controller
	// a zero.
	MeterDropout func(period int) bool

	lastGoodAvgW float64
	haveGoodAvg  bool
}

// PeriodRecord is the harness's log entry for one control period.
type PeriodRecord struct {
	Period     int
	AvgPowerW  float64
	MaxPowerW  float64 // worst 1 s sample in the period (violation check)
	SetpointW  float64
	CPUFreqGHz float64
	GPUFreqMHz []float64

	GPUThroughput []float64 // img/s, period average
	GPULatency    []float64 // s/batch, period average
	GPUQueueDelay []float64 // s/img, period average
	CPUThroughput float64   // subsets/s
	CPULatency    float64   // s/subset

	CPUPowerW float64
	GPUPowerW []float64

	SLOs     []float64
	SLOMiss  []bool // latency exceeded the SLO this period
	Decision Decision
	// EnergyJ is the true energy drawn during this period (Joules);
	// divide period throughput by it for inferences per Joule.
	EnergyJ float64
}

// NewHarness wires the standard loop: ACPI-style meter at 1 s sampling
// and a delta-sigma bank matching the server's grids.
func NewHarness(s *sim.Server, ctrl PowerController, setpoint func(int) float64) (*Harness, error) {
	if setpoint == nil {
		return nil, fmt.Errorf("core: nil setpoint schedule")
	}
	meter, err := power.NewMeter(1)
	if err != nil {
		return nil, err
	}
	cfg := s.Config()
	n := 1 + s.NumGPUs()
	mins := make([]float64, n)
	maxs := make([]float64, n)
	steps := make([]float64, n)
	mins[0], maxs[0], steps[0] = cfg.CPU.FreqMinGHz, cfg.CPU.FreqMaxGHz, cfg.CPU.FreqStepGHz
	for i, g := range cfg.GPUs {
		mins[1+i], maxs[1+i], steps[1+i] = g.FreqMinMHz, g.FreqMaxMHz, g.FreqStepMHz
	}
	bank, err := actuator.NewBank(mins, maxs, steps)
	if err != nil {
		return nil, err
	}
	return &Harness{
		Server:        s,
		Meter:         meter,
		Bank:          bank,
		Controller:    ctrl,
		PeriodSeconds: 4,
		Setpoint:      setpoint,
	}, nil
}

// Run executes the loop for the given number of control periods and
// returns one record per period.
func (h *Harness) Run(periods int) ([]PeriodRecord, error) {
	records := make([]PeriodRecord, 0, periods)
	for k := 0; k < periods; k++ {
		rec, err := h.StepPeriod(k)
		if err != nil {
			return records, err
		}
		records = append(records, rec)
	}
	return records, nil
}

// StepPeriod executes a single control period with the given index
// (the index drives the set-point and SLO schedules). Cluster-level
// coordinators use this to interleave many servers' loops.
func (h *Harness) StepPeriod(k int) (PeriodRecord, error) {
	if h.PeriodSeconds <= 0 {
		return PeriodRecord{}, fmt.Errorf("core: control period %d must be positive", h.PeriodSeconds)
	}
	s := h.Server
	ng := s.NumGPUs()
	{
		if h.OnPeriodStart != nil {
			h.OnPeriodStart(k, s)
		}
		dropout := h.MeterDropout != nil && h.MeterDropout(k)
		start := s.Now()
		setpoint := h.Setpoint(k)
		var slos []float64
		if h.SLOs != nil {
			slos = h.SLOs(k)
		}

		// Advance one control period, sampling the meter each second and
		// accumulating workload statistics.
		rec := PeriodRecord{
			Period:        k,
			SetpointW:     setpoint,
			CPUFreqGHz:    s.CPUFreq(),
			GPUFreqMHz:    make([]float64, ng),
			GPUThroughput: make([]float64, ng),
			GPULatency:    make([]float64, ng),
			GPUQueueDelay: make([]float64, ng),
			GPUPowerW:     make([]float64, ng),
			SLOs:          slos,
			SLOMiss:       make([]bool, ng),
		}
		for i := 0; i < ng; i++ {
			rec.GPUFreqMHz[i] = s.GPUFreq(i)
		}
		cpuTP, cpuLat, cpuP := 0.0, 0.0, 0.0
		energyStart := s.EnergyJ()
		for t := 0; t < h.PeriodSeconds; t++ {
			smp := s.Tick(1)
			if !dropout {
				h.Meter.Sample(s)
			}
			if smp.MeasuredW > rec.MaxPowerW {
				rec.MaxPowerW = smp.MeasuredW
			}
			for i := 0; i < ng; i++ {
				rec.GPUThroughput[i] += smp.GPUStats[i].Throughput
				rec.GPULatency[i] += smp.GPUStats[i].GPUBatchLatency
				rec.GPUQueueDelay[i] += smp.GPUStats[i].QueueDelay
				rec.GPUPowerW[i] += smp.GPUPowerW[i]
			}
			cpuTP += smp.CPUStats.Throughput
			cpuLat += smp.CPUStats.Latency
			cpuP += smp.CPUPowerW
		}
		inv := 1 / float64(h.PeriodSeconds)
		for i := 0; i < ng; i++ {
			rec.GPUThroughput[i] *= inv
			rec.GPULatency[i] *= inv
			rec.GPUQueueDelay[i] *= inv
			rec.GPUPowerW[i] *= inv
			if len(slos) == ng && slos[i] > 0 && rec.GPULatency[i] > slos[i] {
				rec.SLOMiss[i] = true
			}
		}
		rec.CPUThroughput = cpuTP * inv
		rec.CPULatency = cpuLat * inv
		rec.CPUPowerW = cpuP * inv
		rec.EnergyJ = s.EnergyJ() - energyStart
		avg, nSamples := h.Meter.AverageSince(start)
		if nSamples == 0 {
			// Meter fault: hold the last good reading rather than hand
			// the controller a zero (which would slam every clock up).
			if h.haveGoodAvg {
				avg = h.lastGoodAvgW
			} else {
				avg = setpoint // best available prior before any sample
			}
		} else {
			h.lastGoodAvgW = avg
			h.haveGoodAvg = true
		}
		rec.AvgPowerW = avg

		// Build the observation and let the controller decide.
		obs := Observation{
			Period:            k,
			AvgPowerW:         avg,
			SetpointW:         setpoint,
			CPUFreqGHz:        s.CPUFreq(),
			GPUFreqMHz:        rec.GPUFreqMHz,
			GPUThroughputNorm: make([]float64, ng),
			GPUUtil:           make([]float64, ng),
			GPULatencyS:       rec.GPULatency,
			CPUPowerW:         rec.CPUPowerW,
			GPUPowerW:         rec.GPUPowerW,
			SLOs:              slos,
		}
		last := s.Last()
		obs.CPUUtil = last.CPUUtil
		for i := 0; i < ng; i++ {
			obs.GPUUtil[i] = last.GPUUtil[i]
			if p := s.Pipeline(i); p != nil && p.MaxThroughput() > 0 {
				obs.GPUThroughputNorm[i] = clamp01(rec.GPUThroughput[i] / p.MaxThroughput())
			}
		}
		if w := s.CPUWorkload(); w != nil && w.MaxThroughput() > 0 {
			obs.CPUThroughputNorm = clamp01(rec.CPUThroughput / w.MaxThroughput())
		}
		dec := h.Controller.Decide(obs)
		rec.Decision = dec

		// Resolve fractional targets through the modulators and apply.
		targets := make([]float64, 1+ng)
		targets[0] = dec.CPUFreqGHz
		copy(targets[1:], dec.GPUFreqMHz)
		applied, err := h.Bank.Next(targets)
		if err != nil {
			return rec, fmt.Errorf("core: period %d: %w", k, err)
		}
		s.SetCPUFreq(applied[0])
		for i := 0; i < ng; i++ {
			if _, err := s.SetGPUFreq(i, applied[1+i]); err != nil {
				return rec, fmt.Errorf("core: period %d: %w", k, err)
			}
		}
		return rec, nil
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
