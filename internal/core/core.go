// Package core is the CapGPU framework (§3–§4): the control-loop harness
// that wires the power monitor, per-device throughput monitors,
// frequency modulators and a pluggable power controller around a GPU
// server, plus the CapGPU controller itself — the MIMO MPC with
// throughput-driven weight assignment and SLO constraints.
//
// Every baseline of §6.1 implements the same PowerController interface
// (see internal/baselines), so the experiment harness runs them
// identically: at the end of each control period T the harness feeds the
// controller the period-averaged power and normalized throughputs, and
// applies the controller's frequency decision through the delta-sigma
// modulators for the next period.
package core

import (
	"fmt"
	"math"

	"repro/internal/actuator"
	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/mpc"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/telemetry"
	"repro/internal/workload"
)

// Observation is what a power controller sees at the end of a control
// period.
type Observation struct {
	Period    int     // control period index (0-based)
	TimeS     float64 // simulated seconds at the observation (period end)
	AvgPowerW float64 // meter average over the period (the feedback)
	SetpointW float64 // the cap P_s for the next period

	CPUFreqGHz float64 // applied during the period
	GPUFreqMHz []float64

	CPUThroughputNorm float64   // CPU workload throughput / its max
	GPUThroughputNorm []float64 // per-GPU inference throughput / its max
	CPUUtil           float64
	GPUUtil           []float64

	// GPUPhasePrefill is the period-average prefill share of busy GPU
	// time per GPU (LLM workloads only; nil for CNN runs). Phase-aware
	// controllers blend their power-law exponent from it.
	GPUPhasePrefill []float64

	// DevicePowerW carries per-device readings (RAPL/NVML style) for
	// controllers that split the budget, like the CPU+GPU baseline.
	CPUPowerW float64
	GPUPowerW []float64

	// GPULatencyS is the period-average measured batch latency per GPU,
	// used by CapGPU's adaptive SLO floor correction.
	GPULatencyS []float64

	// SLOs holds the current per-GPU inference latency SLO in seconds
	// per batch (0 = no SLO).
	SLOs []float64

	// MeterStale counts consecutive control periods (including this one)
	// for which the power meter produced no trustworthy reading; 0 means
	// AvgPowerW is a fresh measurement. Adaptive controllers must freeze
	// model updates while it is nonzero — the harness is feeding them a
	// held value, not data.
	MeterStale int
	// Degraded mirrors MeterStale > 0 for harnesses running with
	// graceful degradation enabled: AvgPowerW is the last good reading,
	// not this period's measurement.
	Degraded bool
}

// Decision is a controller's target frequencies for the next period.
// Values may be fractional; the harness resolves them onto the hardware
// grids with delta-sigma modulation (§5).
type Decision struct {
	CPUFreqGHz float64
	GPUFreqMHz []float64

	// Flight carries the controller's decision internals for the flight
	// recorder. Nil unless flight recording was enabled on a controller
	// that exposes a trace (FlightAware); the harness moves it into the
	// period's DecisionRecord.
	Flight *flight.ControllerTrace
}

// PowerController is implemented by CapGPU and every baseline.
type PowerController interface {
	Name() string
	Decide(obs Observation) Decision
}

// Options tunes the CapGPU controller.
type Options struct {
	MPC mpc.Config
	// FilterAlpha is the EWMA coefficient applied to the period-average
	// power before it enters the MPC (p̂ = α·p + (1−α)·p̂). The meter
	// already averages the period's 1 s samples (§6.1). Default 1
	// (disabled): filtering lags step responses; MoveGain is the
	// preferred damping.
	FilterAlpha float64
	// MoveGain scales the applied fraction of the MPC's first move
	// (0 < β ≤ 1). β < 1 turns the near-deadbeat receding-horizon law
	// into a damped one (closed-loop pole ≈ 1−β), trading a slightly
	// longer settling time for much lower sensitivity to meter noise —
	// the same bandwidth trade the baselines make through pole
	// placement. Default 0.7.
	MoveGain float64
	// SLOMargin is the fractional safety margin applied when inverting
	// an SLO into a GPU frequency floor: the floor targets
	// (1−margin)·SLO, covering the latency model's residual (its fit is
	// R² ≈ 0.91, not perfect). Default 0.1; set negative to disable.
	SLOMargin float64
	// Adaptive enables online model adaptation: a recursive
	// least-squares estimator (warm-started from the identified model)
	// refines the plant gains every period, so the controller tracks
	// workload-induced gain changes — the §4.4 scenario — instead of
	// relying on its stability margin alone.
	Adaptive bool
	// Forgetting is the RLS forgetting factor when Adaptive is set
	// (default 0.98).
	Forgetting float64
	// PhaseAware enables LLM phase-aware capping: the MPC's GPU gains
	// are rescheduled every period from the observed prefill/decode
	// phase mix (decode barely responds to clocks, so its effective
	// gain is tiny), and a prefill-regime headroom guard pulls GPU
	// commands back toward the SLO floors whenever the prefill-regime
	// power model predicts the commanded point would violate the cap if
	// a prefill burst arrived. Without phase observations (CNN runs)
	// the controller is byte-identical to the phase-blind one.
	PhaseAware bool
	// PhaseLaw overrides the phase power-law exponents used when
	// PhaseAware is set; nil uses DefaultPhaseLaw().
	PhaseLaw *PhasePowerLaw
}

// PhasePowerLaw captures how dynamic GPU power scales with core clock
// per serving phase: P_dyn ~ (f/f_max)^alpha with alpha near-linear for
// compute-bound prefill and near-zero for memory-bound decode. IdentExp
// is the exponent regime the offline identification sweep effectively
// averaged over; the gain scheduler rescales the identified GPU gains
// by alpha(mix)/IdentExp.
type PhasePowerLaw struct {
	PrefillExp float64
	DecodeExp  float64
	IdentExp   float64
}

// DefaultPhaseLaw returns exponents matching the workload.LLMZoo
// profiles, with the identification regime centered between phases.
func DefaultPhaseLaw() PhasePowerLaw {
	return PhasePowerLaw{PrefillExp: 1.15, DecodeExp: 0.10, IdentExp: 0.625}
}

// CapGPU is the paper's controller: MIMO MPC over [CPU, GPU...] with
// weight assignment and SLO-derived GPU frequency floors.
type CapGPU struct {
	ctrl           *mpc.Controller
	initial        *sysid.Model
	alpha          float64
	beta           float64 // applied fraction of the first MPC move
	sloMargin      float64
	filt           float64 // EWMA state
	seen           bool
	rls            *sysid.RLS // nil unless Options.Adaptive
	lastInnovation float64
	lastReg        []float64 // regressor at the last absorbed RLS update
	// floorBoost is the per-GPU multiplicative correction on the
	// SLO-derived frequency floor, adapted from measured latency: when a
	// GPU misses its SLO despite sitting at the model floor, the floor
	// rises until it holds (integral action against model bias).
	floorBoost []float64
	// latency models per GPU for inverting SLOs into frequency bounds
	// (Eq. 10b,c); nil entries mean no SLO handling for that GPU.
	latency []*sysid.LatencyModel
	fminC   float64
	fmaxC   float64
	fminG   []float64
	fmaxG   []float64

	// Phase-aware capping state (nil/empty unless Options.PhaseAware):
	// guardGains/guardOffset form the prefill-regime absolute power
	// model anchored to agree with the identified model at each GPU
	// range's midpoint.
	phase       *PhasePowerLaw
	guardGains  []float64
	guardOffset float64
	scrSched    []float64 // scratch for the scheduled gain vector

	sink telemetry.Sink // nil = telemetry disabled
	node string

	flightOn bool // build flight.ControllerTrace per decision

	// Per-decision scratch, reused across periods so the steady-state
	// Decide path does not re-allocate its knob vectors every call.
	// Safe because mpc.Controller.Compute and sysid.RLS.Update copy
	// what they keep, and lastReg is copied out of scrReg on absorb.
	scrFreqs []float64
	scrTP    []float64
	scrLower []float64
	scrReg   []float64
	scrGains []float64
}

// TelemetryAware is implemented by controllers that emit their own
// lifecycle events (CapGPU reports frozen adaptation and infeasible MPC
// subproblems). Harness.SetTelemetry forwards the sink through it.
type TelemetryAware interface {
	SetTelemetry(sink telemetry.Sink, node string)
}

// SetTelemetry implements TelemetryAware.
func (c *CapGPU) SetTelemetry(sink telemetry.Sink, node string) {
	c.sink = sink
	c.node = node
}

// FlightAware is implemented by controllers that can attach a
// flight.ControllerTrace to their decisions. Harness.SetFlight toggles
// it; recording is off by default and costs nothing while off.
type FlightAware interface {
	SetFlightRecording(on bool)
}

// SetFlightRecording implements FlightAware: besides building traces,
// it switches the MPC into detailed-diagnostics mode so constraint
// activity and the horizon trajectory are available.
func (c *CapGPU) SetFlightRecording(on bool) {
	c.flightOn = on
	c.ctrl.SetDetailedDiagnostics(on)
}

// NewCapGPU builds the controller from an identified power model (knob 0
// = CPU) and the server's frequency ranges. latencyModels has one entry
// per GPU and may contain nils.
func NewCapGPU(model *sysid.Model, server *sim.Server, latencyModels []*sysid.LatencyModel, opts Options) (*CapGPU, error) {
	ng := server.NumGPUs()
	if len(model.Gains) != 1+ng {
		return nil, fmt.Errorf("core: model has %d gains for a server with %d knobs", len(model.Gains), 1+ng)
	}
	if latencyModels != nil && len(latencyModels) != ng {
		return nil, fmt.Errorf("core: %d latency models for %d GPUs", len(latencyModels), ng)
	}
	cfg := server.Config()
	fmin := make([]float64, 1+ng)
	fmax := make([]float64, 1+ng)
	fmin[0], fmax[0] = cfg.CPU.FreqMinGHz, cfg.CPU.FreqMaxGHz
	for i := 0; i < ng; i++ {
		fmin[1+i], fmax[1+i] = cfg.GPUs[i].FreqMinMHz, cfg.GPUs[i].FreqMaxMHz
	}
	ctrl, err := mpc.New(model.Gains, fmin, fmax, opts.MPC)
	if err != nil {
		return nil, err
	}
	alpha := opts.FilterAlpha
	if alpha == 0 {
		alpha = 1
	}
	if alpha < 0 || alpha > 1 {
		return nil, fmt.Errorf("core: filter alpha %g outside (0, 1]", alpha)
	}
	beta := opts.MoveGain
	if beta == 0 {
		beta = 0.7
	}
	if beta <= 0 || beta > 1 {
		return nil, fmt.Errorf("core: move gain %g outside (0, 1]", beta)
	}
	sloMargin := opts.SLOMargin
	if sloMargin == 0 {
		sloMargin = 0.1
	}
	if sloMargin < 0 {
		sloMargin = 0
	}
	if sloMargin >= 1 {
		return nil, fmt.Errorf("core: SLO margin %g must be below 1", sloMargin)
	}
	boost := make([]float64, ng)
	for i := range boost {
		boost[i] = 1
	}
	var rls *sysid.RLS
	if opts.Adaptive {
		forget := opts.Forgetting
		if forget == 0 {
			forget = 0.98
		}
		// The estimator works in normalized frequency coordinates
		// (each knob mapped to [0,1]) so the GHz/MHz scale disparity
		// does not destroy its conditioning; warm-start from the
		// offline model expressed in those coordinates.
		norm := &sysid.Model{Gains: make([]float64, 1+ng)}
		norm.Gains[0] = model.Gains[0] * (fmax[0] - fmin[0])
		norm.Offset = model.Offset + model.Gains[0]*fmin[0]
		for i := 0; i < ng; i++ {
			norm.Gains[1+i] = model.Gains[1+i] * (fmax[1+i] - fmin[1+i])
			norm.Offset += model.Gains[1+i] * fmin[1+i]
		}
		rls, err = sysid.NewRLS(1+ng, norm, forget, 10)
		if err != nil {
			return nil, err
		}
	}
	c := &CapGPU{
		ctrl:       ctrl,
		initial:    model,
		alpha:      alpha,
		beta:       beta,
		sloMargin:  sloMargin,
		floorBoost: boost,
		rls:        rls,
		latency:    latencyModels,
		fminC:      fmin[0],
		fmaxC:      fmax[0],
		fminG:      fmin[1:],
		fmaxG:      fmax[1:],
	}
	if opts.PhaseAware {
		law := DefaultPhaseLaw()
		if opts.PhaseLaw != nil {
			law = *opts.PhaseLaw
		}
		if law.PrefillExp <= 0 || law.DecodeExp <= 0 || law.IdentExp <= 0 {
			return nil, fmt.Errorf("core: phase power-law exponents must be positive, got %+v", law)
		}
		// Prefill-regime model: steeper GPU gains, offset re-anchored so
		// the two models agree at each GPU range's midpoint (where the
		// identification sweep concentrated its excitation).
		guard := make([]float64, 1+ng)
		copy(guard, model.Gains)
		off := model.Offset
		for i := 0; i < ng; i++ {
			gi := model.Gains[1+i] * law.PrefillExp / law.IdentExp
			mid := 0.5 * (fmin[1+i] + fmax[1+i])
			off += (model.Gains[1+i] - gi) * mid
			guard[1+i] = gi
		}
		c.phase = &law
		c.guardGains = guard
		c.guardOffset = off
	}
	return c, nil
}

// Name implements PowerController.
func (c *CapGPU) Name() string { return "CapGPU" }

// MPC exposes the underlying controller (for stability analysis).
func (c *CapGPU) MPC() *mpc.Controller { return c.ctrl }

// ModelInnovation returns the adaptive estimator's last one-step power
// prediction error (0 when not adaptive or before the first update).
func (c *CapGPU) ModelInnovation() float64 { return c.lastInnovation }

// CurrentGains returns the gains the MPC is currently using.
func (c *CapGPU) CurrentGains() []float64 { return c.ctrl.Gains() }

// CurrentModel returns the controller's present power model in natural
// units: the RLS estimate when adaptive, otherwise the model it was
// built with.
func (c *CapGPU) CurrentModel() *sysid.Model {
	if c.rls != nil && c.rls.Count() > 3 {
		return c.denormModel()
	}
	return c.initial
}

// Decide implements PowerController: one MPC step.
//
//capgpu:hotpath
func (c *CapGPU) Decide(obs Observation) Decision {
	// Online adaptation: the observation pairs the frequencies applied
	// during the period with the period's average power — exactly the
	// static-map sample p = A·F + C the estimator consumes. Two
	// safeguards keep closed-loop RLS honest: updates are gated on
	// genuine frequency excitation (steady-state dither carries no
	// identification value and lets thermal drift pollute the gains),
	// and the adapted gains are projected into the §4.4 trust region
	// around the offline model before they steer the MPC.
	// A stale observation carries a held (or garbage) power value, not a
	// measurement: absorbing it would corrupt the identified gains, so
	// updates freeze until the meter is fresh again. The excitation gate
	// then naturally re-enables learning on recovery — the fail-safe
	// descent moved every knob, so the first fresh regressor is far from
	// lastReg and carries real identification value.
	if c.sink != nil && c.rls != nil && obs.MeterStale > 0 {
		c.sink.Emit(telemetry.Event{
			TimeS: obs.TimeS, Period: obs.Period, Type: telemetry.EventAdaptFrozen,
			Node: c.node, Device: -1, Value: float64(obs.MeterStale),
		})
	}
	if c.rls != nil && obs.MeterStale == 0 && len(obs.GPUFreqMHz) == len(c.fminG) {
		f := c.normReg(obs.CPUFreqGHz, obs.GPUFreqMHz)
		if c.excited(f) {
			if innov, err := c.rls.Update(f, obs.AvgPowerW); err == nil {
				c.lastInnovation = innov
				c.lastReg = append(c.lastReg[:0], f...) // copy: f is scratch
				// Let the estimate settle before steering the MPC.
				if c.rls.Count() > 3 {
					_ = c.ctrl.SetGains(c.projectGains(c.denormModel().Gains))
				}
			}
		}
	}
	if !c.seen {
		c.filt = obs.AvgPowerW
		c.seen = true
	} else {
		c.filt = c.alpha*obs.AvgPowerW + (1-c.alpha)*c.filt
	}
	ng := len(obs.GPUFreqMHz)
	c.scrFreqs = growFloats(c.scrFreqs, 1+ng)
	freqs := c.scrFreqs
	freqs[0] = obs.CPUFreqGHz
	copy(freqs[1:], obs.GPUFreqMHz)

	c.scrTP = growFloats(c.scrTP, 1+ng)
	tp := c.scrTP
	tp[0] = obs.CPUThroughputNorm
	copy(tp[1:], obs.GPUThroughputNorm)

	// SLO floors (Eq. 10b,c): invert each GPU's latency law with the
	// safety margin, then apply the adaptive correction learned from
	// measured latencies.
	c.scrLower = growFloats(c.scrLower, 1+ng)
	lower := c.scrLower
	lower[0] = c.fminC
	for i := 0; i < ng; i++ {
		lower[1+i] = c.fminG[i]
		if c.latency == nil || c.latency[i] == nil || len(obs.SLOs) != ng || obs.SLOs[i] <= 0 {
			continue
		}
		lm := c.latency[i]
		slo := obs.SLOs[i]
		// Adapt the floor correction: a measured miss at (or above) the
		// current floor means the model under-predicts; raise the boost.
		// Comfortable headroom lets it decay back toward 1.
		atFloor := true
		if prev, err := mpc.SLOFrequencyBound(lm.EMin, lm.Gamma, lm.FMax, (1-c.sloMargin)*slo); err == nil {
			atFloor = obs.GPUFreqMHz[i] >= 0.98*math.Min(prev*c.floorBoost[i], c.fmaxG[i])
		}
		if len(obs.GPULatencyS) == ng && obs.GPULatencyS[i] > 0 {
			if obs.GPULatencyS[i] > slo && atFloor {
				// Missing while already at the model floor: the law
				// under-predicts; raise the correction.
				c.floorBoost[i] *= 1.05
			} else if obs.GPULatencyS[i] < 0.85*slo {
				c.floorBoost[i] = math.Max(1, c.floorBoost[i]*0.995)
			}
			if c.floorBoost[i] > 2 {
				c.floorBoost[i] = 2
			}
		}
		bound, err := mpc.SLOFrequencyBound(lm.EMin, lm.Gamma, lm.FMax, (1-c.sloMargin)*slo)
		if err != nil {
			continue
		}
		bound *= c.floorBoost[i]
		if bound > c.fmaxG[i] {
			bound = c.fmaxG[i]
		}
		if bound > lower[1+i] {
			lower[1+i] = bound
		}
	}

	// Phase-aware gain scheduling: blend each GPU's effective power
	// exponent from its observed prefill share and rescale the current
	// model's GPU gains by alpha(mix)/IdentExp. A decode-heavy GPU gets
	// a near-zero gain — the MPC stops chasing power with a knob the
	// plant no longer answers to — while a prefill-heavy GPU recovers
	// the full identified response. The schedule is deterministic
	// physics, not an estimate, so it bypasses the RLS trust region and
	// uses its own wider clamp against degenerate gains.
	phaseMix := -1.0
	if c.phase != nil && len(obs.GPUPhasePrefill) == ng {
		base := c.CurrentModel()
		c.scrSched = growFloats(c.scrSched, 1+ng)
		sched := c.scrSched
		copy(sched, base.Gains[:1+ng])
		acc := 0.0
		for i := 0; i < ng; i++ {
			mix := clamp01(obs.GPUPhasePrefill[i])
			acc += mix
			exp := mix*c.phase.PrefillExp + (1-mix)*c.phase.DecodeExp
			g := base.Gains[1+i] * exp / c.phase.IdentExp
			lo, hi := base.Gains[1+i]/8, base.Gains[1+i]*8
			sched[1+i] = math.Min(math.Max(g, lo), hi)
		}
		phaseMix = acc / float64(ng)
		_ = c.ctrl.SetGains(sched)
	}

	d, diag, err := c.ctrl.Compute(c.filt, obs.SetpointW, freqs, tp, lower)
	if err != nil {
		// Constraint conflicts (e.g. every GPU pinned by SLO floors with
		// the cap unreachable) degrade to holding the current point; the
		// paper notes such set points need mechanisms beyond DVFS (§4.4).
		if c.sink != nil {
			c.sink.Emit(telemetry.Event{
				TimeS: obs.TimeS, Period: obs.Period, Type: telemetry.EventMPCInfeasible,
				Node: c.node, Device: -1, Detail: err.Error(),
			})
		}
		hold := Decision{CPUFreqGHz: obs.CPUFreqGHz, GPUFreqMHz: append([]float64(nil), obs.GPUFreqMHz...)}
		if c.flightOn {
			hold.Flight = c.baseTrace(obs)
			hold.Flight.Infeasible = true
			hold.Flight.InfeasibleDetail = err.Error()
		}
		return hold
	}
	out := Decision{CPUFreqGHz: freqs[0] + c.beta*d[0], GPUFreqMHz: make([]float64, ng)}
	for i := 0; i < ng; i++ {
		out.GPUFreqMHz[i] = freqs[1+i] + c.beta*d[1+i]
	}

	// Prefill-headroom guard: during decode, measured power barely
	// answers the GPU clocks, so integral feedback walks them toward
	// f_max at no visible power cost — and the next prefill burst then
	// fires at full clocks, straight through the cap. The guard
	// evaluates the commanded point under the prefill-regime absolute
	// model and, when it would exceed the set point, contracts every
	// GPU command proportionally toward its (SLO-respecting) lower
	// bound until the prefill prediction fits. Decode throughput is
	// nearly clock-flat, so the contraction costs almost no latency.
	phaseGuarded := false
	if c.guardGains != nil && phaseMix >= 0 {
		// The absolute model was fit on the identification sweep, which
		// runs sub-saturated; a real prefill burst saturates the pipeline
		// and lands above the model's prediction at the same clocks. The
		// guard therefore targets the set point minus a headroom margin
		// that covers the model's saturation bias.
		const guardMarginFrac = 0.08
		target := (1 - guardMarginFrac) * obs.SetpointW
		pred := c.guardOffset + c.guardGains[0]*out.CPUFreqGHz
		floorPred := pred
		for i := 0; i < ng; i++ {
			pred += c.guardGains[1+i] * out.GPUFreqMHz[i]
			floorPred += c.guardGains[1+i] * lower[1+i]
		}
		if pred > target && pred-floorPred > 1e-9 {
			frac := (pred - target) / (pred - floorPred)
			if frac > 1 {
				frac = 1
			}
			// The guard is a readiness constraint for the *next* prefill
			// burst, not a second tracking loop: once the plant is already
			// prefill-heavy, measured power answers the knobs and the MPC
			// feedback owns the set point, so applying the absolute-model
			// contraction on top would double-regulate and bias the plant
			// below the cap. Engage it fully while decode-heavy and ramp
			// it out as the observed prefill share crosses into a
			// prefill-heavy regime.
			const mixLo, mixHi = 0.35, 0.65
			switch {
			case phaseMix >= mixHi:
				frac = 0
			case phaseMix > mixLo:
				frac *= (mixHi - phaseMix) / (mixHi - mixLo)
			}
			for i := 0; i < ng; i++ {
				out.GPUFreqMHz[i] -= frac * (out.GPUFreqMHz[i] - lower[1+i])
			}
			phaseGuarded = true
		}
	}

	if c.flightOn {
		out.Flight = c.buildTrace(obs, d, diag, tp, lower)
		if phaseMix >= 0 {
			out.Flight.PhaseMix = phaseMix
			out.Flight.PhaseGuarded = phaseGuarded
		}
	}
	return out
}

// baseTrace fills the model/adaptation half of a ControllerTrace — the
// part that exists even when the MPC subproblem had no solution.
func (c *CapGPU) baseTrace(obs Observation) *flight.ControllerTrace {
	model := c.CurrentModel()
	t := &flight.ControllerTrace{
		Gains:          append([]float64(nil), model.Gains...),
		OffsetW:        model.Offset,
		InnovationW:    c.lastInnovation,
		Adaptive:       c.rls != nil,
		AdaptFrozen:    c.rls != nil && obs.MeterStale > 0,
		FilteredPowerW: c.filt,
	}
	if c.rls != nil {
		t.RLSUpdates = c.rls.Count()
	}
	return t
}

// buildTrace assembles the flight-recorder view of a successful MPC
// decision.
func (c *CapGPU) buildTrace(obs Observation, d []float64, diag *mpc.Diagnostics, tp, lower []float64) *flight.ControllerTrace {
	t := c.baseTrace(obs)
	t.PredictedEndW = diag.PredictedEndPowerW
	t.HorizonW = diag.PredictedStepW
	t.BiasW = diag.BiasW
	t.DeadbandHold = diag.DeadbandHold
	t.Relaxed = diag.Clamped
	t.Solver = diag.Solver
	t.SolverIterations = diag.SolverIterations

	// One-step prediction under the applied (move-gain-scaled) first
	// move — what the flight recorder scores against the next sample.
	g := c.ctrl.Gains()
	pred := c.filt
	for i := range d {
		pred += g[i] * c.beta * d[i]
	}
	t.PredictedNextW = pred

	t.Knobs = make([]flight.KnobConstraint, len(d))
	for i := range t.Knobs {
		kc := &t.Knobs[i]
		if i < len(tp) {
			kc.ThroughputNorm = tp[i]
		}
		if i < len(diag.Weights) {
			kc.WeightR = diag.Weights[i]
		}
		if i < len(diag.ActiveLower) {
			kc.AtLower = diag.ActiveLower[i]
		}
		if i < len(diag.ActiveUpper) {
			kc.AtUpper = diag.ActiveUpper[i]
		}
		if i < len(diag.PinnedKnobs) {
			kc.Pinned = diag.PinnedKnobs[i]
		}
		if i < len(diag.LowerBoundsNorm) {
			kc.LowerBoundNorm = diag.LowerBoundsNorm[i]
		}
		if i > 0 && i-1 < len(c.floorBoost) {
			// The floor is SLO-derived exactly when it was raised above
			// the hardware minimum in Decide's bound inversion.
			kc.SLOFloor = i < len(lower) && lower[i] > c.fminG[i-1]
			kc.FloorBoost = c.floorBoost[i-1]
		}
	}
	return t
}

// growFloats returns buf with length n, reusing its backing array when
// the capacity suffices (per-period scratch reuse). Contents are
// whatever the caller last wrote; callers overwrite every element.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// normReg maps the applied frequencies into [0,1] per knob — the
// estimator's coordinates.
func (c *CapGPU) normReg(fc float64, fg []float64) []float64 {
	c.scrReg = growFloats(c.scrReg, 1+len(fg))
	f := c.scrReg
	//lint:ignore floatsafety New validates fmaxC > fminC, so the range is nonzero
	f[0] = (fc - c.fminC) / (c.fmaxC - c.fminC)
	for i := range fg {
		//lint:ignore floatsafety New validates fmaxG[i] > fminG[i] per GPU
		f[1+i] = (fg[i] - c.fminG[i]) / (c.fmaxG[i] - c.fminG[i])
	}
	return f
}

// denormModel converts the estimator's normalized-coordinate model back
// to natural units (W/GHz, W/MHz).
func (c *CapGPU) denormModel() *sysid.Model {
	nm := c.rls.Model()
	out := &sysid.Model{Gains: make([]float64, len(nm.Gains)), Offset: nm.Offset, N: nm.N}
	//lint:ignore floatsafety New validates fmaxC > fminC, so the range is nonzero
	out.Gains[0] = nm.Gains[0] / (c.fmaxC - c.fminC)
	out.Offset -= out.Gains[0] * c.fminC
	for i := range c.fminG {
		//lint:ignore floatsafety New validates fmaxG[i] > fminG[i] per GPU
		out.Gains[1+i] = nm.Gains[1+i] / (c.fmaxG[i] - c.fminG[i])
		out.Offset -= out.Gains[1+i] * c.fminG[i]
	}
	return out
}

// excited reports whether the (normalized) regressor has moved enough
// since the last absorbed update to carry identification value (≥2% of
// range on average across the knobs).
func (c *CapGPU) excited(f []float64) bool {
	if c.lastReg == nil {
		return true
	}
	d := 0.0
	for i := range f {
		d += math.Abs(f[i] - c.lastReg[i])
	}
	return d/float64(len(f)) >= 0.02
}

// projectGains clamps adapted gains into [1/3x, 3x] of the offline
// model's — the gain-error region §4.4 certifies stable — so a bad
// stretch of data can degrade, but never destabilize, the controller.
func (c *CapGPU) projectGains(g []float64) []float64 {
	c.scrGains = growFloats(c.scrGains, len(g))
	out := c.scrGains
	for i := range g {
		lo := c.initial.Gains[i] / 3
		hi := c.initial.Gains[i] * 3
		out[i] = math.Min(math.Max(g[i], lo), hi)
	}
	return out
}

// DegradeConfig tunes the harness's graceful degradation under meter
// faults. The zero value enables it with defaults; set Disable for the
// unsafe strawman the R1 robustness experiment contrasts against.
type DegradeConfig struct {
	// Disable turns degradation off entirely: a blind period feeds the
	// controller a raw 0 W average, no fail-safe engages, and no robust
	// filtering or stuck-value detection runs.
	Disable bool
	// FailSafeAfter is how many consecutive blind periods are tolerated
	// (riding on the last good reading) before the harness enters
	// fail-safe; default 3.
	FailSafeAfter int
	// FailSafeStep is the fraction of each knob's frequency range
	// stepped toward f_min per fail-safe period; default 0.25, so a
	// blind server is at its power floor within four periods and the cap
	// cannot be violated no matter what the workload does.
	FailSafeStep float64
	// StaleGuardW inflates the last-good fallback value by this many
	// Watts per consecutive blind period (default 8, negative to
	// disable). While the loop is blind, unobserved thermal drift can
	// carry true power above the last reading; the guard makes the
	// controller trim a little each blind period instead of holding,
	// covering the drift until fail-safe takes over.
	StaleGuardW float64
}

// Harness runs a PowerController against a simulated server: the §3.1
// feedback loop (measure → decide → modulate → actuate), with the
// fault-injection and graceful-degradation plumbing of internal/faults.
//
// A Harness is single-goroutine: it owns its server, meter, actuator
// bank, and flight recorder, none of which are safe for concurrent
// use. Rack-scale parallelism (cluster.Coordinator.Workers) steps many
// harnesses concurrently, one goroutine per harness at a time — the
// only shared object a harness may touch from its loop is a
// thread-safe telemetry sink (the hub, or a cluster-installed
// telemetry.Buffer that the coordinator flushes at its barrier).
type Harness struct {
	Server     *sim.Server
	Meter      *power.Meter
	Bank       *actuator.Bank
	Controller PowerController
	// PeriodSeconds is the control period T (paper: 4, with 1 s meter
	// sampling).
	PeriodSeconds int
	// Setpoint returns P_s for period k (enables Fig. 10's set-point
	// steps). Required.
	Setpoint func(period int) float64
	// SLOs returns the per-GPU latency SLOs for period k; nil for none
	// (enables Fig. 9's SLO changes).
	SLOs func(period int) []float64
	// OnPeriodStart, if set, runs before each control period — the hook
	// experiments use to inject workload changes mid-run.
	OnPeriodStart func(period int, s *sim.Server)
	// MeterDropout, if set, reports whether the power meter loses period
	// k's samples entirely — the legacy single-fault hook, kept for
	// callers predating Faults. The loop then falls back to the last
	// good period average instead of feeding the controller a zero.
	MeterDropout func(period int) bool
	// Faults optionally injects the internal/faults schedule: meter
	// dropout/stuck/spike, actuator command loss, GPU derating and
	// failure. When set (and Degrade.Disable is not), the harness also
	// switches to robust period averaging (trimmed mean + stuck-value
	// detection).
	Faults *faults.Schedule
	// Degrade tunes the degradation policy (zero value = enabled
	// defaults).
	Degrade DegradeConfig
	// ActuatorRetries bounds re-deliveries of a frequency command whose
	// read-back diverges from the command (default 2; negative = none).
	ActuatorRetries int
	// Telemetry, when non-nil, receives a period-start event, the five
	// phase spans (sense → condense → decide → actuate → verify), and one
	// end-of-period sample per control period. Nil (the default) disables
	// instrumentation; use SetTelemetry to also wire the bank and the
	// controller.
	Telemetry telemetry.Sink
	// TelemetryNode labels this harness's telemetry (the rack node name;
	// empty for single-server runs).
	TelemetryNode string
	// WorkloadClass labels this harness's period samples for the energy
	// ledger's attribution (empty ledgers under the default class).
	WorkloadClass string
	// PolicyEpoch stamps period samples with the policy epoch they ran
	// under; the control-plane daemon restamps it on every applied
	// mutation.
	PolicyEpoch int
	// CauseID / CauseParent stamp flight records with the provenance
	// span that set the current cap (and that span's parent — the
	// reallocation). The cluster coordinator rewrites them whenever a
	// traced reallocation moves this node's cap; empty (omitted from
	// JSON) when no tracer is attached.
	CauseID     string
	CauseParent string
	// Flight, when non-nil, receives one DecisionRecord per control
	// period (the flight recorder). Nil (the default) disables recording
	// at the cost of one nil check per period; use SetFlight to also
	// switch a FlightAware controller into trace-building mode.
	Flight *flight.Recorder

	lastGoodAvgW float64
	haveGoodAvg  bool
	stale        int     // consecutive blind periods so far
	lastRawW     float64 // last recorded meter value (stuck detection)
	haveRaw      bool
	gpuFailed    []bool
	stashedPipes []workload.GPUWorkload

	// applyFn caches the actuator ApplyFunc (a method value) so the
	// period loop does not allocate one closure per period; applyK is
	// the period it reads the fault schedule at.
	applyFn actuator.ApplyFunc
	applyK  int

	// Per-period scratch for StepPeriod's transients: the observation's
	// derived vectors and the actuation target vector. Safe to reuse
	// because Observation is only read during Controller.Decide and the
	// bank copies targets into its own report; PeriodRecord's slices,
	// which escape to the caller, are still freshly allocated.
	obsTPNorm []float64
	obsUtil   []float64
	applyTgt  []float64
}

// PeriodRecord is the harness's log entry for one control period.
type PeriodRecord struct {
	Period     int
	AvgPowerW  float64
	MaxPowerW  float64 // worst 1 s sample in the period (violation check)
	SetpointW  float64
	CPUFreqGHz float64
	GPUFreqMHz []float64

	GPUThroughput  []float64 // img/s (CNN) or tokens/s (LLM), period average
	GPULatencyS    []float64 // s/batch (CNN) or s/output-token (LLM), period average
	GPUQueueDelayS []float64 // s/img, period average
	CPUThroughput  float64   // subsets/s
	CPULatencyS    float64   // s/subset

	// GPUPhasePrefill and GPUQueueDepth are the period-average prefill
	// share and admission-queue depth per GPU. Allocated only when an
	// LLM workload is attached (nil for CNN runs, keeping those
	// artifacts byte-identical).
	GPUPhasePrefill []float64
	GPUQueueDepth   []float64

	CPUPowerW float64
	GPUPowerW []float64

	SLOs     []float64
	SLOMiss  []bool // latency exceeded the SLO this period
	Decision Decision
	// EnergyJ is the true energy drawn during this period (Joules);
	// divide period throughput by it for inferences per Joule.
	EnergyJ float64

	// TrueAvgPowerW is the period mean of the server's true power draw —
	// what the breaker sees. It equals AvgPowerW up to meter noise in
	// healthy periods but diverges under meter faults, when AvgPowerW
	// records whatever value the controller was actually fed.
	TrueAvgPowerW float64
	// MeterStale counts consecutive blind periods including this one
	// (0 = fresh reading).
	MeterStale int
	// Degraded marks a blind period handled by the last-good-value
	// fallback.
	Degraded bool
	// FailSafe marks a period in which the harness overrode the
	// controller and stepped every knob toward f_min.
	FailSafe bool
	// Uncontrolled marks a period produced by StepUncontrolled: the
	// node ran open-loop (rack dropout), no controller decision exists.
	Uncontrolled bool
	// ActuatorDiverged flags knobs (0 = CPU, 1.. = GPUs) whose applied
	// frequency still differed from the command after bounded retry.
	ActuatorDiverged []bool
	// ActuatorRetries is the number of command re-deliveries this period.
	ActuatorRetries int
	// Faults lists the injected faults active this period (DSL form).
	Faults []string
}

// NewHarness wires the standard loop: ACPI-style meter at 1 s sampling
// and a delta-sigma bank matching the server's grids.
func NewHarness(s *sim.Server, ctrl PowerController, setpoint func(int) float64) (*Harness, error) {
	if setpoint == nil {
		return nil, fmt.Errorf("core: nil setpoint schedule")
	}
	meter, err := power.NewMeter(1)
	if err != nil {
		return nil, err
	}
	cfg := s.Config()
	n := 1 + s.NumGPUs()
	mins := make([]float64, n)
	maxs := make([]float64, n)
	steps := make([]float64, n)
	mins[0], maxs[0], steps[0] = cfg.CPU.FreqMinGHz, cfg.CPU.FreqMaxGHz, cfg.CPU.FreqStepGHz
	for i, g := range cfg.GPUs {
		mins[1+i], maxs[1+i], steps[1+i] = g.FreqMinMHz, g.FreqMaxMHz, g.FreqStepMHz
	}
	bank, err := actuator.NewBank(mins, maxs, steps)
	if err != nil {
		return nil, err
	}
	return &Harness{
		Server:        s,
		Meter:         meter,
		Bank:          bank,
		Controller:    ctrl,
		PeriodSeconds: 4,
		Setpoint:      setpoint,
	}, nil
}

// SetTelemetry attaches a telemetry sink to the harness, its actuator
// bank, and — when the controller implements TelemetryAware — the
// controller, labeling everything with the given node name.
func (h *Harness) SetTelemetry(sink telemetry.Sink, node string) {
	h.Telemetry = sink
	h.TelemetryNode = node
	if h.Bank != nil {
		h.Bank.SetTelemetry(sink, node)
	}
	if ta, ok := h.Controller.(TelemetryAware); ok {
		ta.SetTelemetry(sink, node)
	}
}

// SetFlight attaches a flight recorder to the harness and — when the
// controller implements FlightAware — switches it into trace-building
// mode. Pass nil to detach and stop trace building.
func (h *Harness) SetFlight(rec *flight.Recorder) {
	h.Flight = rec
	if fa, ok := h.Controller.(FlightAware); ok {
		fa.SetFlightRecording(rec != nil)
	}
}

// flightRecord condenses one period into the flight recorder's entry,
// adopting the controller trace the decision carried.
func (h *Harness) flightRecord(rec PeriodRecord, dec Decision) flight.DecisionRecord {
	fr := flight.DecisionRecord{
		Period:          rec.Period,
		TimeS:           h.Server.Now(),
		CauseID:         h.CauseID,
		ParentID:        h.CauseParent,
		SetpointW:       rec.SetpointW,
		MeasuredW:       rec.AvgPowerW,
		TruePowerW:      rec.TrueAvgPowerW,
		MeterStale:      rec.MeterStale,
		Degraded:        rec.Degraded,
		FailSafe:        rec.FailSafe,
		Uncontrolled:    rec.Uncontrolled,
		Faults:          rec.Faults,
		CommandedCPUGHz: dec.CPUFreqGHz,
		CommandedGPUMHz: append([]float64(nil), dec.GPUFreqMHz...),
		ActuatorRetries: rec.ActuatorRetries,
		Controller:      dec.Flight,
		PhasePrefill:    rec.GPUPhasePrefill,
		QueueDepth:      rec.GPUQueueDepth,
	}
	for i, miss := range rec.SLOMiss {
		if miss {
			fr.SLOMissGPUs = append(fr.SLOMissGPUs, i)
		}
	}
	for i, div := range rec.ActuatorDiverged {
		if div {
			fr.ActuatorDiverged = append(fr.ActuatorDiverged, i)
		}
	}
	return fr
}

// telemetrySample condenses a PeriodRecord into the once-per-period
// telemetry snapshot.
func (h *Harness) telemetrySample(rec PeriodRecord) telemetry.PeriodSample {
	name := ""
	if h.Controller != nil {
		name = h.Controller.Name()
	}
	return telemetry.PeriodSample{
		Node:             h.TelemetryNode,
		Controller:       name,
		Period:           rec.Period,
		TimeS:            h.Server.Now(),
		SetpointW:        rec.SetpointW,
		AvgPowerW:        rec.AvgPowerW,
		TruePowerW:       rec.TrueAvgPowerW,
		EnergyJ:          rec.EnergyJ,
		CPUFreqGHz:       rec.CPUFreqGHz,
		GPUFreqMHz:       rec.GPUFreqMHz,
		GPULatencyS:      rec.GPULatencyS,
		GPUPhasePrefill:  rec.GPUPhasePrefill,
		GPUQueueDepth:    rec.GPUQueueDepth,
		SLOMiss:          rec.SLOMiss,
		MeterStale:       rec.MeterStale,
		Degraded:         rec.Degraded,
		FailSafe:         rec.FailSafe,
		Uncontrolled:     rec.Uncontrolled,
		ActuatorRetries:  rec.ActuatorRetries,
		ActuatorDiverged: rec.ActuatorDiverged,
		Faults:           rec.Faults,
		Class:            h.WorkloadClass,
		Epoch:            h.PolicyEpoch,
	}
}

// Run executes the loop for the given number of control periods and
// returns one record per period.
func (h *Harness) Run(periods int) ([]PeriodRecord, error) {
	records := make([]PeriodRecord, 0, periods)
	for k := 0; k < periods; k++ {
		rec, err := h.StepPeriod(k)
		if err != nil {
			return records, err
		}
		records = append(records, rec)
	}
	return records, nil
}

// StepPeriod executes a single control period with the given index
// (the index drives the set-point, SLO and fault schedules).
// Cluster-level coordinators use this to interleave many servers'
// loops.
//
//capgpu:hotpath
func (h *Harness) StepPeriod(k int) (PeriodRecord, error) {
	if h.PeriodSeconds <= 0 {
		return PeriodRecord{}, fmt.Errorf("core: control period %d must be positive", h.PeriodSeconds)
	}
	s := h.Server
	ng := s.NumGPUs()
	if h.OnPeriodStart != nil {
		h.OnPeriodStart(k, s)
	}
	h.applyGPUFailTransitions(k)
	dropout := h.MeterDropout != nil && h.MeterDropout(k)
	var meterFault faults.Fault
	haveMeterFault := false
	spikeIdx, spikeW := -1, 0.0
	if h.Faults != nil {
		meterFault, haveMeterFault = h.Faults.MeterFaultAt(k)
		if i, d, ok := h.Faults.SpikeSample(k, h.PeriodSeconds); ok {
			spikeIdx, spikeW = i, d
		}
	}
	start := s.Now()
	setpoint := h.Setpoint(k)
	var slos []float64
	if h.SLOs != nil {
		slos = h.SLOs(k)
	}
	h.Bank.StampPeriod(k, start)
	if h.Telemetry != nil {
		h.Telemetry.Emit(telemetry.Event{TimeS: start, Period: k, Type: telemetry.EventPeriodStart,
			Node: h.TelemetryNode, Device: -1, Value: setpoint})
		h.Telemetry.BeginPhase(k, telemetry.PhaseSense)
	}

	// Advance one control period, sampling the meter each second (or
	// letting the injected fault corrupt/suppress the sample) and
	// accumulating workload statistics.
	rec := PeriodRecord{
		Period:         k,
		SetpointW:      setpoint,
		CPUFreqGHz:     s.CPUFreq(),
		GPUFreqMHz:     make([]float64, ng),
		GPUThroughput:  make([]float64, ng),
		GPULatencyS:    make([]float64, ng),
		GPUQueueDelayS: make([]float64, ng),
		GPUPowerW:      make([]float64, ng),
		SLOs:           slos,
		SLOMiss:        make([]bool, ng),
	}
	if h.Faults != nil {
		for _, f := range h.Faults.ActiveAt(k) {
			rec.Faults = append(rec.Faults, f.String())
		}
	}
	for i := 0; i < ng; i++ {
		rec.GPUFreqMHz[i] = s.GPUFreq(i)
	}
	cpuTP, cpuLat, cpuP, trueP := 0.0, 0.0, 0.0, 0.0
	energyStart := s.EnergyJ()
	for t := 0; t < h.PeriodSeconds; t++ {
		smp := s.Tick(1)
		switch {
		case dropout || (haveMeterFault && meterFault.Kind == faults.MeterDropout):
			// sample lost
		case haveMeterFault && meterFault.Kind == faults.MeterStuck:
			// The meter's ADC wedged: it reports its last value forever.
			if last, ok := h.Meter.Latest(); ok {
				h.Meter.Record(smp.TimeS, last.PowerW)
			}
		case t == spikeIdx:
			h.Meter.Record(smp.TimeS, smp.MeasuredW+spikeW)
		default:
			h.Meter.Sample(s)
		}
		if smp.MeasuredW > rec.MaxPowerW {
			rec.MaxPowerW = smp.MeasuredW
		}
		trueP += smp.TruePowerW
		for i := 0; i < ng; i++ {
			rec.GPUThroughput[i] += smp.GPUStats[i].Throughput
			rec.GPULatencyS[i] += smp.GPUStats[i].GPUBatchLatencyS
			rec.GPUQueueDelayS[i] += smp.GPUStats[i].QueueDelayS
			rec.GPUPowerW[i] += smp.GPUPowerW[i]
			if smp.GPUStats[i].LLM {
				// Lazily allocated so CNN runs (and their goldens) see
				// nil slices and zero extra work.
				if rec.GPUPhasePrefill == nil {
					rec.GPUPhasePrefill = make([]float64, ng)
					rec.GPUQueueDepth = make([]float64, ng)
				}
				rec.GPUPhasePrefill[i] += smp.GPUStats[i].PrefillShare
				rec.GPUQueueDepth[i] += smp.GPUStats[i].QueueDepth
			}
		}
		cpuTP += smp.CPUStats.Throughput
		cpuLat += smp.CPUStats.LatencyS
		cpuP += smp.CPUPowerW
	}
	inv := 1 / float64(h.PeriodSeconds)
	for i := 0; i < ng; i++ {
		rec.GPUThroughput[i] *= inv
		rec.GPULatencyS[i] *= inv
		rec.GPUQueueDelayS[i] *= inv
		rec.GPUPowerW[i] *= inv
		if rec.GPUPhasePrefill != nil {
			rec.GPUPhasePrefill[i] *= inv
			rec.GPUQueueDepth[i] *= inv
		}
		if len(slos) == ng && slos[i] > 0 && rec.GPULatencyS[i] > slos[i] {
			rec.SLOMiss[i] = true
		}
	}
	rec.CPUThroughput = cpuTP * inv
	rec.CPULatencyS = cpuLat * inv
	rec.CPUPowerW = cpuP * inv
	rec.TrueAvgPowerW = trueP * inv
	rec.EnergyJ = s.EnergyJ() - energyStart
	if h.Telemetry != nil {
		h.Telemetry.EndPhase(k, telemetry.PhaseSense)
		h.Telemetry.BeginPhase(k, telemetry.PhaseCondense)
	}

	// Condense the meter window and run the degradation state machine:
	// fresh reading → use it; blind (no samples, or stuck-value
	// detection fired) → ride the last good value, and after
	// FailSafeAfter consecutive blind periods step toward f_min so the
	// cap cannot be violated while the loop cannot see.
	avg, fresh := h.condenseMeter(start)
	failSafe := false
	if fresh {
		h.stale = 0
		h.lastGoodAvgW = avg
		h.haveGoodAvg = true
	} else {
		h.stale++
		if h.Degrade.Disable {
			// Raw mode (the R1 strawman): an empty window reads as 0 W,
			// which slams every clock up — the failure the fallback
			// exists to prevent.
			if math.IsNaN(avg) {
				avg = 0
			}
		} else {
			rec.Degraded = true
			if h.haveGoodAvg {
				avg = h.lastGoodAvgW
			} else {
				avg = setpoint // best available prior before any sample
			}
			guard := h.Degrade.StaleGuardW
			if guard == 0 {
				guard = 8
			} else if guard < 0 {
				guard = 0
			}
			avg += guard * float64(h.stale)
			after := h.Degrade.FailSafeAfter
			if after <= 0 {
				after = 3
			}
			failSafe = h.stale >= after
		}
	}
	rec.AvgPowerW = avg
	rec.MeterStale = h.stale
	rec.FailSafe = failSafe
	if h.Telemetry != nil {
		h.Telemetry.EndPhase(k, telemetry.PhaseCondense)
		h.Telemetry.BeginPhase(k, telemetry.PhaseDecide)
	}

	var dec Decision
	if failSafe {
		dec = h.failSafeDecision(rec)
	} else {
		// Build the observation and let the controller decide. Its
		// derived vectors live in harness scratch: Observation is only
		// read during the Decide call, so the buffers are free again by
		// the next period.
		h.obsTPNorm = growFloats(h.obsTPNorm, ng)
		h.obsUtil = growFloats(h.obsUtil, ng)
		obs := Observation{
			Period:            k,
			TimeS:             s.Now(),
			AvgPowerW:         avg,
			SetpointW:         setpoint,
			CPUFreqGHz:        s.CPUFreq(),
			GPUFreqMHz:        rec.GPUFreqMHz,
			GPUThroughputNorm: h.obsTPNorm,
			GPUUtil:           h.obsUtil,
			GPULatencyS:       rec.GPULatencyS,
			GPUPhasePrefill:   rec.GPUPhasePrefill,
			CPUPowerW:         rec.CPUPowerW,
			GPUPowerW:         rec.GPUPowerW,
			SLOs:              slos,
			MeterStale:        h.stale,
			Degraded:          rec.Degraded,
		}
		last := s.Last()
		obs.CPUUtil = last.CPUUtil
		for i := 0; i < ng; i++ {
			obs.GPUUtil[i] = last.GPUUtil[i]
			obs.GPUThroughputNorm[i] = 0 // scratch may hold last period's value
			if w := s.Workload(i); w != nil && w.MaxThroughput() > 0 {
				obs.GPUThroughputNorm[i] = clamp01(rec.GPUThroughput[i] / w.MaxThroughput())
			}
		}
		if w := s.CPUWorkload(); w != nil && w.MaxThroughput() > 0 {
			obs.CPUThroughputNorm = clamp01(rec.CPUThroughput / w.MaxThroughput())
		}
		dec = h.Controller.Decide(obs)
	}
	rec.Decision = dec
	if h.Telemetry != nil {
		h.Telemetry.EndPhase(k, telemetry.PhaseDecide)
		h.Telemetry.BeginPhase(k, telemetry.PhaseActuate)
	}

	// Resolve fractional targets through the modulators and apply with
	// read-back verification (faults may drop or clamp any command).
	h.applyTgt = growFloats(h.applyTgt, 1+ng)
	targets := h.applyTgt
	targets[0] = dec.CPUFreqGHz
	copy(targets[1:], dec.GPUFreqMHz)
	retries := h.ActuatorRetries
	if retries == 0 {
		retries = 2
	} else if retries < 0 {
		retries = 0
	}
	report, err := h.Bank.ApplyVerified(targets, h.applier(k), retries)
	if err != nil {
		return rec, fmt.Errorf("core: period %d: %w", k, err)
	}
	if h.Telemetry != nil {
		h.Telemetry.EndPhase(k, telemetry.PhaseActuate)
		h.Telemetry.BeginPhase(k, telemetry.PhaseVerify)
	}
	rec.ActuatorDiverged = report.Diverged
	rec.ActuatorRetries = report.Retries
	if h.Flight != nil {
		// Record before the telemetry sample so a dump trigger fired by
		// this period's sample already sees this period's decision.
		h.Flight.Record(h.flightRecord(rec, dec))
	}
	if h.Telemetry != nil {
		h.Telemetry.EndPhase(k, telemetry.PhaseVerify)
		h.Telemetry.Period(h.telemetrySample(rec))
	}
	return rec, nil
}

// condenseMeter turns the period's meter window into (average, fresh).
// fresh is false when the window is empty or — in robust mode — when
// the stuck-value detector fires: every sample identical to each other
// AND to the previously recorded value, which genuine milliwatt-
// quantized noisy readings essentially never produce. In non-robust
// mode the average is the plain mean (bit-compatible with the
// pre-fault-injection harness); an empty window returns NaN.
func (h *Harness) condenseMeter(start float64) (float64, bool) {
	rds := h.Meter.ReadingsSince(start)
	robust := h.Faults != nil && !h.Degrade.Disable
	defer func() {
		if len(rds) > 0 {
			h.lastRawW = rds[len(rds)-1].PowerW
			h.haveRaw = true
		}
	}()
	if len(rds) == 0 {
		return math.NaN(), false
	}
	if !robust {
		sum := 0.0
		for _, r := range rds {
			sum += r.PowerW
		}
		return sum / float64(len(rds)), true
	}
	if h.haveRaw {
		stuck := true
		for _, r := range rds {
			//lint:ignore floatsafety stuck-meter detection wants bit-exact repeats, not near-equality
			if r.PowerW != h.lastRawW {
				stuck = false
				break
			}
		}
		if stuck {
			avg, _ := power.RobustAverage(rds)
			return avg, false
		}
	}
	avg, _ := power.RobustAverage(rds)
	return avg, true
}

// failSafeDecision steps every knob a fixed fraction of its range
// toward f_min — the blind-mode descent that makes cap violation
// impossible without any feedback.
func (h *Harness) failSafeDecision(cur PeriodRecord) Decision {
	frac := h.Degrade.FailSafeStep
	if frac <= 0 {
		frac = 0.25
	}
	lo, hi := h.Bank.Mod(0).Range()
	d := Decision{
		CPUFreqGHz: math.Max(cur.CPUFreqGHz-frac*(hi-lo), lo),
		GPUFreqMHz: make([]float64, len(cur.GPUFreqMHz)),
	}
	for i := range cur.GPUFreqMHz {
		lo, hi := h.Bank.Mod(1 + i).Range()
		d.GPUFreqMHz[i] = math.Max(cur.GPUFreqMHz[i]-frac*(hi-lo), lo)
	}
	return d
}

// applier returns the ApplyFunc for period k: the write path to the
// hardware, filtered through the fault schedule (lost commands leave
// the old frequency in place; a derated or failed GPU clamps or
// ignores what it is sent). The method value is built once and cached
// on the harness (with the period stashed in applyK) so the hot loop
// does not allocate a fresh closure every period.
func (h *Harness) applier(k int) actuator.ApplyFunc {
	h.applyK = k
	if h.applyFn == nil {
		h.applyFn = h.applyAt
	}
	return h.applyFn
}

// applyAt is the cached ApplyFunc body; h.applyK carries the period
// set by applier just before the bank calls it.
func (h *Harness) applyAt(dev, attempt int, level float64) float64 {
	k, s := h.applyK, h.Server
	if dev > 0 {
		g := dev - 1
		if h.Faults.GPUFailedAt(k, g) {
			return s.GPUFreq(g) // offline: command ignored
		}
		if frac, ok := h.Faults.GPUDerateAt(k, g); ok {
			gmin, gmax := h.Bank.Mod(dev).Range()
			dmax := math.Max(frac*gmax, gmin)
			if level > dmax {
				level = dmax
			}
		}
	}
	if h.Faults.ActuatorLostAt(k, dev, attempt) {
		if dev == 0 {
			return s.CPUFreq()
		}
		return s.GPUFreq(dev - 1)
	}
	if dev == 0 {
		return s.SetCPUFreq(level)
	}
	v, _ := s.SetGPUFreq(dev-1, level)
	return v
}

// applyGPUFailTransitions detaches a failing GPU's pipeline (and pins
// its clock to f_min) on fault entry, and re-attaches it on recovery.
func (h *Harness) applyGPUFailTransitions(k int) {
	if h.Faults == nil || h.Faults.Empty() {
		return
	}
	s := h.Server
	ng := s.NumGPUs()
	if h.gpuFailed == nil {
		h.gpuFailed = make([]bool, ng)
		h.stashedPipes = make([]workload.GPUWorkload, ng)
	}
	for i := 0; i < ng; i++ {
		failed := h.Faults.GPUFailedAt(k, i)
		switch {
		case failed && !h.gpuFailed[i]:
			h.stashedPipes[i] = s.Workload(i)
			_ = s.AttachWorkload(i, nil)
			gmin, _ := h.Bank.Mod(1 + i).Range()
			_, _ = s.SetGPUFreq(i, gmin)
			h.gpuFailed[i] = true
		case !failed && h.gpuFailed[i]:
			_ = s.AttachWorkload(i, h.stashedPipes[i])
			h.stashedPipes[i] = nil
			h.gpuFailed[i] = false
		}
	}
}

// StepUncontrolled advances one control period with no measurement and
// no control action — the state a rack node is in when it has dropped
// out of coordination: frequencies frozen at their last applied
// levels, workloads still running, power still drawn. The record's
// AvgPowerW is the true period average (what the rack PDU sees), since
// no meter reading was taken.
func (h *Harness) StepUncontrolled(k int) (PeriodRecord, error) {
	if h.PeriodSeconds <= 0 {
		return PeriodRecord{}, fmt.Errorf("core: control period %d must be positive", h.PeriodSeconds)
	}
	s := h.Server
	ng := s.NumGPUs()
	rec := PeriodRecord{
		Period:         k,
		SetpointW:      h.Setpoint(k),
		CPUFreqGHz:     s.CPUFreq(),
		GPUFreqMHz:     make([]float64, ng),
		GPUThroughput:  make([]float64, ng),
		GPULatencyS:    make([]float64, ng),
		GPUQueueDelayS: make([]float64, ng),
		GPUPowerW:      make([]float64, ng),
		SLOMiss:        make([]bool, ng),
		Uncontrolled:   true,
	}
	for i := 0; i < ng; i++ {
		rec.GPUFreqMHz[i] = s.GPUFreq(i)
	}
	trueP, cpuTP, cpuLat, cpuP := 0.0, 0.0, 0.0, 0.0
	energyStart := s.EnergyJ()
	for t := 0; t < h.PeriodSeconds; t++ {
		smp := s.Tick(1)
		if smp.MeasuredW > rec.MaxPowerW {
			rec.MaxPowerW = smp.MeasuredW
		}
		trueP += smp.TruePowerW
		for i := 0; i < ng; i++ {
			rec.GPUThroughput[i] += smp.GPUStats[i].Throughput
			rec.GPULatencyS[i] += smp.GPUStats[i].GPUBatchLatencyS
			rec.GPUQueueDelayS[i] += smp.GPUStats[i].QueueDelayS
			rec.GPUPowerW[i] += smp.GPUPowerW[i]
			if smp.GPUStats[i].LLM {
				if rec.GPUPhasePrefill == nil {
					rec.GPUPhasePrefill = make([]float64, ng)
					rec.GPUQueueDepth = make([]float64, ng)
				}
				rec.GPUPhasePrefill[i] += smp.GPUStats[i].PrefillShare
				rec.GPUQueueDepth[i] += smp.GPUStats[i].QueueDepth
			}
		}
		cpuTP += smp.CPUStats.Throughput
		cpuLat += smp.CPUStats.LatencyS
		cpuP += smp.CPUPowerW
	}
	inv := 1 / float64(h.PeriodSeconds)
	for i := 0; i < ng; i++ {
		rec.GPUThroughput[i] *= inv
		rec.GPULatencyS[i] *= inv
		rec.GPUQueueDelayS[i] *= inv
		rec.GPUPowerW[i] *= inv
		if rec.GPUPhasePrefill != nil {
			rec.GPUPhasePrefill[i] *= inv
			rec.GPUQueueDepth[i] *= inv
		}
	}
	rec.CPUThroughput = cpuTP * inv
	rec.CPULatencyS = cpuLat * inv
	rec.CPUPowerW = cpuP * inv
	rec.TrueAvgPowerW = trueP * inv
	rec.AvgPowerW = rec.TrueAvgPowerW
	rec.EnergyJ = s.EnergyJ() - energyStart
	if h.Flight != nil {
		// No decision exists on an open-loop period; the record freezes
		// the frequencies the node is stuck at.
		h.Flight.Record(h.flightRecord(rec, Decision{
			CPUFreqGHz: rec.CPUFreqGHz,
			GPUFreqMHz: rec.GPUFreqMHz,
		}))
	}
	if h.Telemetry != nil {
		h.Telemetry.Period(h.telemetrySample(rec))
	}
	return rec, nil
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
