package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/sim"
)

func TestNewMultiLayerValidation(t *testing.T) {
	s, model, lms := testRig(t, 20)
	inner, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiLayer(nil, s, model.Gains); err == nil {
		t.Fatal("expected nil-inner error")
	}
	if _, err := NewMultiLayer(inner, nil, model.Gains); err == nil {
		t.Fatal("expected nil-server error")
	}
	// A server whose GPUs expose no throttle savings is rejected.
	cfg := sim.DefaultTestbed(1)
	for i := range cfg.GPUs {
		cfg.GPUs[i].MemThrottleSaveW = 0
	}
	bare, err := sim.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiLayer(inner, bare, model.Gains); err == nil {
		t.Fatal("expected no-savings error")
	}
	ml, err := NewMultiLayer(inner, s, model.Gains)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Name() != "CapGPU + mem-throttle" {
		t.Fatalf("name = %q", ml.Name())
	}
}

// infeasibleCap is a set point below the server's frequency-only power
// floor; only the memory-throttle layer can reach it.
func infeasibleCap(t *testing.T, s *sim.Server) float64 {
	t.Helper()
	lo, _ := s.PowerRange()
	return lo - 30
}

func TestMultiLayerReachesInfeasibleCap(t *testing.T) {
	s, model, lms := testRig(t, 21)
	cap := infeasibleCap(t, s)

	inner, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := NewMultiLayer(inner, s, model.Gains)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ml, func(int) float64 { return cap })
	if err != nil {
		t.Fatal(err)
	}
	recs, err := h.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	var tail []float64
	for _, r := range recs[30:] {
		tail = append(tail, r.AvgPowerW)
	}
	mean := metrics.Mean(tail)
	if mean > cap+8 {
		t.Fatalf("multi-layer steady mean %g did not reach infeasible cap %g", mean, cap)
	}
	if len(ml.ThrottledGPUs()) == 0 {
		t.Fatal("no memory throttle engaged")
	}
}

func TestFrequencyOnlyControllerCannotReachInfeasibleCap(t *testing.T) {
	s, model, lms := testRig(t, 21)
	cap := infeasibleCap(t, s)
	inner, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, inner, func(int) float64 { return cap })
	if err != nil {
		t.Fatal(err)
	}
	recs, err := h.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	var tail []float64
	for _, r := range recs[30:] {
		tail = append(tail, r.AvgPowerW)
	}
	if mean := metrics.Mean(tail); mean <= cap+8 {
		t.Fatalf("frequency-only controller implausibly reached the infeasible cap: %g vs %g", mean, cap)
	}
}

func TestMultiLayerReleasesOnHeadroom(t *testing.T) {
	s, model, lms := testRig(t, 22)
	lowCap := infeasibleCap(t, s)
	inner, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := NewMultiLayer(inner, s, model.Gains)
	if err != nil {
		t.Fatal(err)
	}
	// Infeasible cap for 40 periods, then a generous one.
	sched := func(k int) float64 {
		if k < 40 {
			return lowCap
		}
		return 1000
	}
	h, err := NewHarness(s, ml, sched)
	if err != nil {
		t.Fatal(err)
	}
	engagedMid := false
	h.OnPeriodStart = func(k int, _ *sim.Server) {
		if k == 39 && len(ml.ThrottledGPUs()) > 0 {
			engagedMid = true
		}
	}
	if _, err := h.Run(90); err != nil {
		t.Fatal(err)
	}
	if !engagedMid {
		t.Fatal("no throttle engaged during the infeasible phase")
	}
	if n := len(ml.ThrottledGPUs()); n != 0 {
		t.Fatalf("%d throttles still engaged after headroom returned", n)
	}
}

func TestHarnessMeterDropoutFallback(t *testing.T) {
	s, model, lms := testRig(t, 23)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	// The meter goes dark for periods 30-34.
	h.MeterDropout = func(k int) bool { return k >= 30 && k < 35 }
	recs, err := h.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[29:35] {
		if r.AvgPowerW <= 0 {
			t.Fatalf("period %d: dropout fed the controller %g W", r.Period, r.AvgPowerW)
		}
	}
	// Control must survive the outage: back near the cap by the end.
	var tail []float64
	for _, r := range recs[50:] {
		tail = append(tail, r.AvgPowerW)
	}
	if m := metrics.Mean(tail); m < 870 || m > 930 {
		t.Fatalf("post-outage mean %g strayed from the 900 W cap", m)
	}
}

func TestHarnessOnPeriodStartHook(t *testing.T) {
	s, model, lms := testRig(t, 24)
	ctrl, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	var fired []int
	h.OnPeriodStart = func(k int, srv *sim.Server) {
		fired = append(fired, k)
		if k == 5 {
			// Detach GPU 2's workload mid-run.
			if err := srv.AttachPipeline(2, nil); err != nil {
				t.Error(err)
			}
		}
	}
	recs, err := h.Run(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(fired) != 10 || fired[0] != 0 || fired[9] != 9 {
		t.Fatalf("hook firing pattern wrong: %v", fired)
	}
	if recs[7].GPUThroughput[2] != 0 {
		t.Fatalf("GPU 2 still reporting throughput after detach: %g", recs[7].GPUThroughput[2])
	}
}

func TestAdaptiveCapGPUTracksGainChange(t *testing.T) {
	s, model, lms := testRig(t, 25)
	ctrl, err := NewCapGPU(model, s, lms, Options{Adaptive: true})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ctrl, func(int) float64 { return 900 })
	if err != nil {
		t.Fatal(err)
	}
	// Detach two pipelines mid-run: GPU utilization collapses, so the
	// true power-vs-frequency slope of those GPUs drops by ~40%.
	h.OnPeriodStart = func(k int, srv *sim.Server) {
		if k == 40 {
			_ = srv.AttachPipeline(1, nil)
			_ = srv.AttachPipeline(2, nil)
		}
	}
	if _, err := h.Run(100); err != nil {
		t.Fatal(err)
	}
	adapted := ctrl.CurrentGains()
	// The adaptive gains must have moved off the initial estimate for
	// the idled GPUs.
	moved := 0
	for i := 2; i <= 3; i++ {
		if adapted[i] < model.Gains[i]*0.95 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatalf("adaptive gains did not track the workload change: %v vs %v",
			adapted, model.Gains)
	}
	if ctrl.ModelInnovation() == 0 {
		t.Fatal("no innovation recorded")
	}
}
