package core

import (
	"testing"

	"repro/internal/metrics"
	"repro/internal/workload"
)

func TestNewBatchAdapterValidation(t *testing.T) {
	s, model, lms := testRig(t, 30)
	inner, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	zoo := workload.Zoo()
	profs := []workload.ModelProfile{zoo["resnet50"], zoo["swin_t"], zoo["vgg16"]}
	if _, err := NewBatchAdapter(nil, s, lms, profs); err == nil {
		t.Fatal("expected nil-inner error")
	}
	if _, err := NewBatchAdapter(inner, s, lms[:2], profs); err == nil {
		t.Fatal("expected model-count error")
	}
	ba, err := NewBatchAdapter(inner, s, lms, profs)
	if err != nil {
		t.Fatal(err)
	}
	if ba.Name() != "CapGPU + batching" {
		t.Fatalf("name = %q", ba.Name())
	}
	if got := ba.BatchSizes(); len(got) != 3 || got[0] != 20 {
		t.Fatalf("initial batches = %v", got)
	}
}

func TestBatchAdapterMeetsUnreachableSLO(t *testing.T) {
	zoo := workload.Zoo()
	profs := []workload.ModelProfile{zoo["resnet50"], zoo["swin_t"], zoo["vgg16"]}
	// SLO for GPU 0: 60% of its full-batch e_min — unreachable at batch
	// 20 even at 1350 MHz; generous for the others.
	slos := []float64{0.6 * profs[0].EMinBatch, 4 * profs[1].EMinBatch, 4 * profs[2].EMinBatch}

	run := func(withBatching bool) (missRate float64, finalBatch int) {
		s, model, lms := testRig(t, 31)
		inner, err := NewCapGPU(model, s, lms, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var ctrl PowerController = inner
		var ba *BatchAdapter
		if withBatching {
			ba, err = NewBatchAdapter(inner, s, lms, profs)
			if err != nil {
				t.Fatal(err)
			}
			ctrl = ba
		}
		h, err := NewHarness(s, ctrl, func(int) float64 { return 1000 })
		if err != nil {
			t.Fatal(err)
		}
		h.SLOs = func(int) []float64 { return slos }
		recs, err := h.Run(60)
		if err != nil {
			t.Fatal(err)
		}
		var misses []bool
		for _, r := range recs[20:] {
			misses = append(misses, r.SLOMiss[0])
		}
		fb := 20
		if ba != nil {
			fb = ba.BatchSizes()[0]
		}
		return metrics.MissRate(misses), fb
	}

	plainMiss, _ := run(false)
	adaptedMiss, adaptedBatch := run(true)
	if plainMiss < 0.9 {
		t.Fatalf("without batching the unreachable SLO should miss ~always, got %g", plainMiss)
	}
	if adaptedMiss > 0.1 {
		t.Fatalf("with batching the SLO should hold, miss rate %g", adaptedMiss)
	}
	if adaptedBatch >= 20 {
		t.Fatalf("batch did not shrink: %d", adaptedBatch)
	}
}

func TestBatchAdapterRestoresBatchWhenSLORelaxes(t *testing.T) {
	zoo := workload.Zoo()
	profs := []workload.ModelProfile{zoo["resnet50"], zoo["swin_t"], zoo["vgg16"]}
	tight := []float64{0.6 * profs[0].EMinBatch, 4 * profs[1].EMinBatch, 4 * profs[2].EMinBatch}
	loose := []float64{4 * profs[0].EMinBatch, 4 * profs[1].EMinBatch, 4 * profs[2].EMinBatch}

	s, model, lms := testRig(t, 32)
	inner, err := NewCapGPU(model, s, lms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ba, err := NewBatchAdapter(inner, s, lms, profs)
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHarness(s, ba, func(int) float64 { return 1000 })
	if err != nil {
		t.Fatal(err)
	}
	h.SLOs = func(k int) []float64 {
		if k < 30 {
			return tight
		}
		return loose
	}
	shrunk := false
	if _, err := h.Run(30); err != nil {
		t.Fatal(err)
	}
	if ba.BatchSizes()[0] < 20 {
		shrunk = true
	}
	if !shrunk {
		t.Fatal("batch did not shrink under the tight SLO")
	}
	// Continue under the loose SLO (period indices restart, both map to
	// the loose schedule beyond 30... use a fresh harness phase).
	h.SLOs = func(int) []float64 { return loose }
	if _, err := h.Run(40); err != nil {
		t.Fatal(err)
	}
	if got := ba.BatchSizes()[0]; got != 20 {
		t.Fatalf("batch did not restore after the SLO relaxed: %d", got)
	}
}
