package core

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/workload"
)

// BatchAdapter adds the dynamic-batching knob of the coordinated
// batching + DVFS literature (Nabavinejad et al., TPDS 2022; Khan et
// al., ICOIN 2024 — both cited by the paper) on top of any inner
// controller: when a GPU's latency SLO is unreachable even at the
// maximum clock (SLO < e_min at the configured batch), the adapter
// shrinks that GPU's batch, cutting the per-batch floor at a throughput
// efficiency cost; when slack returns, the batch grows back.
//
// The adapter keeps the inner controller's latency models coherent: the
// SLO→frequency floors of Eq. (10b,c) use e_min, which moves with the
// batch, so each batch change rewrites the shared LatencyModel's EMin.
type BatchAdapter struct {
	Inner  PowerController
	server *sim.Server
	// models are the latency models shared with the inner controller
	// (same pointers), one per GPU; profiles the corresponding workload
	// profiles; configured the workloads' nominal batch sizes.
	models     []*sysid.LatencyModel
	profiles   []workload.ModelProfile
	configured []int

	// MinBatch floors the shrink (default 4).
	MinBatch int
	// Hysteresis periods between batch moves per GPU (default 3).
	Hold int

	cooldown []int
}

// NewBatchAdapter wraps inner with batch adaptation. models must be the
// same slice handed to the inner controller (the adapter mutates the
// entries' EMin in place); profiles supply each GPU workload's latency
// decomposition.
func NewBatchAdapter(inner PowerController, server *sim.Server, models []*sysid.LatencyModel, profiles []workload.ModelProfile) (*BatchAdapter, error) {
	if inner == nil || server == nil {
		return nil, fmt.Errorf("core: batch adapter needs an inner controller and a server")
	}
	ng := server.NumGPUs()
	if len(models) != ng || len(profiles) != ng {
		return nil, fmt.Errorf("core: %d models / %d profiles for %d GPUs", len(models), len(profiles), ng)
	}
	b := &BatchAdapter{
		Inner:      inner,
		server:     server,
		models:     models,
		profiles:   profiles,
		configured: make([]int, ng),
		MinBatch:   4,
		Hold:       3,
		cooldown:   make([]int, ng),
	}
	for i := 0; i < ng; i++ {
		b.configured[i] = profiles[i].BatchSize
	}
	return b, nil
}

// Name implements PowerController.
func (b *BatchAdapter) Name() string { return b.Inner.Name() + " + batching" }

// BatchSizes returns the live per-GPU batch sizes.
func (b *BatchAdapter) BatchSizes() []int {
	out := make([]int, b.server.NumGPUs())
	for i := range out {
		if p := b.server.Pipeline(i); p != nil {
			out[i] = p.BatchSize()
		}
	}
	return out
}

// Decide implements PowerController: adapt batches, then delegate.
func (b *BatchAdapter) Decide(obs Observation) Decision {
	ng := b.server.NumGPUs()
	for i := 0; i < ng; i++ {
		if b.cooldown[i] > 0 {
			b.cooldown[i]--
			continue
		}
		p := b.server.Pipeline(i)
		if p == nil || b.models[i] == nil || len(obs.SLOs) != ng || obs.SLOs[i] <= 0 {
			continue
		}
		slo := obs.SLOs[i]
		cur := p.BatchSize()
		prof := b.profiles[i]

		// Shrink while the SLO is below the reachable floor (with a 10%
		// margin for the model residual) and room remains.
		floorNow := prof.EMinForBatch(cur)
		if 0.9*slo < floorNow && cur > b.MinBatch {
			next := cur * 3 / 4
			if next < b.MinBatch {
				next = b.MinBatch
			}
			b.apply(i, p, next)
			continue
		}
		// Grow back toward the configured batch when the next step up
		// would still clear the SLO comfortably.
		if cur < b.configured[i] {
			next := cur * 4 / 3
			if next <= cur {
				next = cur + 1
			}
			if next > b.configured[i] {
				next = b.configured[i]
			}
			if prof.EMinForBatch(next) < 0.7*slo {
				b.apply(i, p, next)
			}
		}
	}
	return b.Inner.Decide(obs)
}

// apply sets the batch and rewrites the shared latency model's floor so
// the inner controller's SLO inversion stays consistent.
func (b *BatchAdapter) apply(i int, p *workload.Pipeline, batch int) {
	if err := p.SetBatchSize(batch); err != nil {
		return
	}
	b.models[i].EMin = b.profiles[i].EMinForBatch(batch)
	b.cooldown[i] = b.Hold
}
