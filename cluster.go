package capgpu

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/sysid"
)

// Extension types: rack-level coordination (the paper's oversubscription
// context) and the §4.4 multi-layer future-work controller.
type (
	// ClusterNode is one coordinator-managed server.
	ClusterNode = cluster.Node
	// ClusterPolicy decides the per-server budget split.
	ClusterPolicy = cluster.Policy
	// ClusterObservation is the per-node state policies allocate on.
	ClusterObservation = cluster.Observation
	// Coordinator divides a rack budget across servers and drives their
	// control loops.
	Coordinator = cluster.Coordinator
	// UniformPolicy splits the rack budget equally.
	UniformPolicy = cluster.Uniform
	// DemandProportionalPolicy splits by measured demand above floors.
	DemandProportionalPolicy = cluster.DemandProportional
	// PriorityPolicy fills servers in strict priority order.
	PriorityPolicy = cluster.Priority
	// MultiLayerController adds memory throttling for caps unreachable
	// by frequency scaling alone (§4.4 future work).
	MultiLayerController = core.MultiLayer
	// OnlineEstimator is the recursive least-squares model adapter.
	OnlineEstimator = sysid.RLS
	// BatchAdapter adds the dynamic-batching knob (coordinated batching
	// + DVFS) for SLOs unreachable by clock scaling at the configured
	// batch size.
	BatchAdapter = core.BatchAdapter
	// Rack groups coordinator-managed servers inside a facility
	// hierarchy; Hierarchy is the SHIP-style two-level controller.
	Rack = cluster.Rack
	// Hierarchy divides a facility budget across racks, each rack across
	// its servers.
	Hierarchy = cluster.Hierarchy
)

// NewClusterNode wires a server and its local controller into a
// coordinator-managed node.
func NewClusterNode(name string, s *Server, ctrl PowerController, priority int) (*ClusterNode, error) {
	return cluster.NewNode(name, s, ctrl, priority)
}

// NewCoordinator assembles a rack-level power coordinator.
func NewCoordinator(nodes []*ClusterNode, policy ClusterPolicy, budget func(period int) float64) (*Coordinator, error) {
	return cluster.NewCoordinator(nodes, policy, budget)
}

// NewMultiLayer wraps a controller with the memory-throttle layer.
func NewMultiLayer(inner PowerController, s *Server, gains []float64) (*MultiLayerController, error) {
	return core.NewMultiLayer(inner, s, gains)
}

// NewRack wraps a coordinator as one rack of a facility hierarchy.
func NewRack(name string, coord *Coordinator, priority int) (*Rack, error) {
	return cluster.NewRack(name, coord, priority)
}

// NewHierarchy assembles the two-level facility controller.
func NewHierarchy(racks []*Rack, policy ClusterPolicy, budget func(period int) float64) (*Hierarchy, error) {
	return cluster.NewHierarchy(racks, policy, budget)
}

// NewBatchAdapter wraps a controller with dynamic batch-size adaptation;
// models must be the same latency-model slice handed to the inner
// controller.
func NewBatchAdapter(inner PowerController, s *Server, models []*LatencyModel, profiles []ModelProfile) (*BatchAdapter, error) {
	return core.NewBatchAdapter(inner, s, models, profiles)
}

// NewOnlineEstimator builds a recursive least-squares power-model
// estimator (see OnlineEstimator); CapGPU uses one internally when
// Options.Adaptive is set.
func NewOnlineEstimator(nKnobs int, initial *PowerModel, lambda, initCov float64) (*OnlineEstimator, error) {
	return sysid.NewRLS(nKnobs, initial, lambda, initCov)
}
