// Benchmarks regenerating every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding experiment
// end-to-end per iteration and reports the headline quantity as a custom
// metric, so `go test -bench=. -benchmem` doubles as the reproduction
// harness (the cmd/capgpu-bench tool prints the full tables).
package capgpu_test

import (
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// metricName turns a display label into a whitespace-free benchmark
// metric unit.
func metricName(label, suffix string) string {
	return strings.ReplaceAll(label, " ", "_") + suffix
}

func BenchmarkTable1Motivation(b *testing.B) {
	var last *experiments.Table1Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Table1Motivation(1)
		if err != nil {
			b.Fatal(err)
		}
		last = r
	}
	for _, row := range last.Rows {
		b.ReportMetric(row.ThroughputIPS, metricName(row.Config, "_img/s"))
	}
}

func BenchmarkFig2aSystemID(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2aSystemID(2)
		if err != nil {
			b.Fatal(err)
		}
		r2 = r.Model.R2
	}
	b.ReportMetric(r2, "R2")
}

func BenchmarkFig2bLatencyModel(b *testing.B) {
	var r2 float64
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig2bLatencyModel("swin_t", 3)
		if err != nil {
			b.Fatal(err)
		}
		r2 = r.Model.R2
	}
	b.ReportMetric(r2, "R2_gamma0.91")
}

func BenchmarkFig3PowerControl(b *testing.B) {
	var res *experiments.Fig3Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig3PowerControl(4, 100)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Runs["capgpu"].Summary.RMSE, "capgpu_rmseW")
	b.ReportMetric(res.Runs["gpu-only"].Summary.RMSE, "gpuonly_rmseW")
	b.ReportMetric(res.Runs["cpu-only"].Summary.Mean-900, "cpuonly_errW")
}

func BenchmarkFig4FixedStep(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig4FixedStep(4, 100)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.Runs["fixed-step-1"].Summary.Std, "step1_stdW")
	b.ReportMetric(res.Runs["fixed-step-5"].Summary.Std, "step5_stdW")
}

func BenchmarkFig5SafeFixedStep(b *testing.B) {
	var res *experiments.Fig4Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig5SafeFixedStep(4, 100)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, n := range res.Order {
		b.ReportMetric(float64(res.Runs[n].Summary.Violations), n+"_violations")
	}
}

func BenchmarkFig6SetpointSweep(b *testing.B) {
	var res *experiments.Fig6Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig6SetpointSweep(5, 100)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	// Mean |error| per controller across set points.
	sums := map[string]float64{}
	counts := map[string]float64{}
	for _, p := range res.Points {
		sums[p.Controller] += p.AbsErrW
		counts[p.Controller]++
	}
	for _, n := range res.Order {
		b.ReportMetric(sums[n]/counts[n], n+"_meanErrW")
	}
}

func BenchmarkFig7Performance(b *testing.B) {
	var res *experiments.Fig7Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig7Performance(6, 100)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, row := range res.Rows {
		sum := 0.0
		for _, tp := range row.GPUThroughput {
			sum += tp
		}
		b.ReportMetric(sum, metricName(row.Controller, "_img/s"))
	}
}

func BenchmarkFig8BaselineSLO(b *testing.B) {
	var res *experiments.SLOResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8Fig9SLOAdaptation(7, 60)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, n := range []string{"safe-fixed-step-1", "gpu-only"} {
		r := res.Runs[n]
		worst := 0.0
		for _, m := range r.PostChangeMissRate {
			worst = math.Max(worst, m)
		}
		b.ReportMetric(worst, n+"_worstMissRate")
	}
}

func BenchmarkFig9CapGPUSLO(b *testing.B) {
	var res *experiments.SLOResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig8Fig9SLOAdaptation(7, 60)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	worst := 0.0
	for _, m := range res.Runs["capgpu"].PostChangeMissRate {
		worst = math.Max(worst, m)
	}
	b.ReportMetric(worst, "capgpu_worstMissRate")
}

func BenchmarkFig10Adaptation(b *testing.B) {
	var res *experiments.Fig10Result
	for i := 0; i < b.N; i++ {
		r, err := experiments.Fig10Adaptation(8, 120)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, n := range res.Order {
		b.ReportMetric(float64(res.SettlingAfterRaise[n]), n+"_settleRaise")
	}
}

func BenchmarkAblationWeights(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationWeights(21, 80)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].GPUTput, "weighted_img/s")
	b.ReportMetric(rows[1].GPUTput, "uniform_img/s")
}

func BenchmarkAblationDeltaSigma(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationDeltaSigma(22, 100)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(math.Abs(rows[0].Summary.Mean-905), "deltasigma_biasW")
	b.ReportMetric(math.Abs(rows[1].Summary.Mean-905), "rounding_biasW")
}

func BenchmarkAblationHorizons(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationHorizons(23, 80)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, row := range rows {
		b.ReportMetric(row.Summary.RMSE, metricName(row.Config, "_rmseW"))
	}
}

func BenchmarkAblationSolver(b *testing.B) {
	var rows []experiments.AblationRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.AblationSolver(24, 60)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, row := range rows {
		b.ReportMetric(row.Summary.RMSE, metricName(row.Config, "_rmseW"))
	}
}

func BenchmarkStabilityAnalysis(b *testing.B) {
	var res *experiments.StabilityResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.StabilityAnalysis(9)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(res.NominalPole, "nominal_pole")
	b.ReportMetric(res.UniformHi, "gain_margin")
}

func BenchmarkExtensionAdaptive(b *testing.B) {
	var rows []experiments.AdaptiveRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionAdaptive(31, 100)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].PredRMSEPost, "static_predRMSE_W")
	b.ReportMetric(rows[1].PredRMSEPost, "adaptive_predRMSE_W")
}

func BenchmarkExtensionInfeasibleCap(b *testing.B) {
	var rows []experiments.InfeasibleRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionInfeasibleCap(32, 60)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].SteadyErrW, "freqonly_errW")
	b.ReportMetric(rows[1].SteadyErrW, "multilayer_errW")
}

func BenchmarkExtensionCluster(b *testing.B) {
	var rows []experiments.ClusterRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionCluster(33, 60, 2850)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, row := range rows {
		b.ReportMetric(row.AggThroughput, row.Policy+"_img/s")
	}
}

func BenchmarkEnergyEfficiency(b *testing.B) {
	var rows []experiments.EfficiencyRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.EnergyEfficiency(6, 100, 1000)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	for _, row := range rows {
		b.ReportMetric(row.ImgPerKJ, metricName(row.Controller, "_img/kJ"))
	}
}

func BenchmarkExtensionBatchSLO(b *testing.B) {
	var rows []experiments.BatchRow
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionBatchSLO(34, 60)
		if err != nil {
			b.Fatal(err)
		}
		rows = r
	}
	b.ReportMetric(rows[0].MissRate, "fixedbatch_missRate")
	b.ReportMetric(rows[1].MissRate, "batching_missRate")
}

func BenchmarkRobustnessFaults(b *testing.B) {
	var res *experiments.RobustnessResult
	for i := 0; i < b.N; i++ {
		r, err := experiments.ExtensionRobustness(5, 100)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	for _, row := range res.Rows {
		b.ReportMetric(float64(row.CapViolations), metricName(row.Config, "_viol"))
		b.ReportMetric(row.WorstExcessW, metricName(row.Config, "_worstW"))
		b.ReportMetric(row.SLOMissRate, metricName(row.Config, "_sloMiss"))
		b.ReportMetric(float64(row.RecoveryPeriods), metricName(row.Config, "_recovery"))
	}
}
