// Command capgpu-doctor replays a run's flight record (plus,
// optionally, its telemetry event stream and CSV trace) and prints a
// root-cause report: run-level health, a constraint-activity table, and
// one diagnosed incident per anomaly window — each attributed (meter
// blind window, stale-model overshoot, SLO/cap conflict, fault-
// coincident violation, actuator loss) or flagged UNEXPLAINED.
//
// Usage:
//
//	capgpu-doctor -flight flight.jsonl [-events events.jsonl] [-csv run.csv] [-json]
//
// With -alerts (requires -events and -node), the online alert engine's
// firing/resolved stream is cross-checked against the diagnosed
// incidents: every fired per-node alert must overlap an incident of
// the matching kind, and every sustained incident of an alertable kind
// must have been caught online.
//
// With -trace trace.jsonl -explain node@period, the doctor answers the
// provenance question instead of the anomaly one: it resolves the cap
// the node ran under at that period and prints the causal chain behind
// it (policy op → reallocation → cap change → settle), exactly like
// capgpu-trace -explain.
//
// Exit codes are CI-gateable: 0 = clean run or every incident
// explained; 2 = unexplained anomalies or an alert/incident mismatch;
// 1 = usage or input errors.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/flight"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

func main() {
	flightPath := flag.String("flight", "", "flight-record JSONL (required; written by capgpu-sim -flight)")
	eventsPath := flag.String("events", "", "telemetry events JSONL (optional cross-check + SLO fallback)")
	csvPath := flag.String("csv", "", "run CSV trace (optional row-count cross-check)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of text")
	measSlack := flag.Float64("slack", 0.01, "measured-violation slack fraction above the set point")
	trueSlack := flag.Float64("true-slack", 0.02, "breaker-side violation slack fraction")
	node := flag.String("node", "", "keep only events for this node label (plus rack-scope events) — for rack/daemon event streams covering many nodes")
	alerts := flag.Bool("alerts", false, "cross-check online alerts in -events against diagnosed incidents (requires -events and -node)")
	alertMargin := flag.Int("alert-margin", 0, "alert/incident overlap margin in periods (0 = default)")
	alertMinSpan := flag.Int("alert-min-span", 0, "shortest incident span the reverse alert check requires (0 = default)")
	tracePath := flag.String("trace", "", "decision-provenance trace JSONL (capgpu-rack -trace) for -explain")
	explain := flag.String("explain", "", "with -trace: explain the cap behind node@period (e.g. n002@4310)")
	flag.Parse()

	if *flightPath == "" {
		fmt.Fprintln(os.Stderr, "capgpu-doctor: -flight is required")
		flag.Usage()
		os.Exit(1)
	}
	if *alerts && (*eventsPath == "" || *node == "") {
		fmt.Fprintln(os.Stderr, "capgpu-doctor: -alerts requires -events and -node")
		flag.Usage()
		os.Exit(1)
	}

	if (*explain == "") != (*tracePath == "") {
		fmt.Fprintln(os.Stderr, "capgpu-doctor: -explain and -trace go together")
		flag.Usage()
		os.Exit(1)
	}

	records, err := readFlight(*flightPath)
	if err != nil {
		fatalf("read flight record: %v", err)
	}

	if *explain != "" {
		if err := runExplain(records, *tracePath, *explain); err != nil {
			fatalf("%v", err)
		}
		return
	}
	var events []telemetry.Event
	if *eventsPath != "" {
		f, err := os.Open(*eventsPath)
		if err != nil {
			fatalf("open events: %v", err)
		}
		events, err = telemetry.ReadEvents(f)
		closeErr := f.Close()
		if err != nil {
			fatalf("read events: %v", err)
		}
		if closeErr != nil {
			fatalf("close events: %v", closeErr)
		}
	}
	if *node != "" {
		// A daemon run's event stream interleaves every member; the
		// diagnosis of one node's flight record should only see that
		// node's events plus the rack-scope ones (policy changes,
		// checkpoints), matching the soak gate's slicing.
		kept := events[:0]
		for _, e := range events {
			if e.Node == *node || e.Node == "rack" {
				kept = append(kept, e)
			}
		}
		events = kept
	}

	report, err := flight.Diagnose(flight.DoctorInput{
		Records:           records,
		Events:            events,
		MeasuredSlackFrac: *measSlack,
		TrueSlackFrac:     *trueSlack,
	})
	if err != nil {
		fatalf("%v", err)
	}

	var alertRes *flight.AlertCheckResult
	if *alerts {
		alertRes = flight.CheckAlerts(flight.AlertCheckInput{
			Node:               *node,
			Alerts:             flight.AlertWindows(events),
			Incidents:          report.Incidents,
			MarginPeriods:      *alertMargin,
			MinIncidentPeriods: *alertMinSpan,
		})
	}

	if *jsonOut {
		out := struct {
			*flight.Report
			Alerts *flight.AlertCheckResult `json:"alerts,omitempty"`
		}{report, alertRes}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fatalf("encode report: %v", err)
		}
	} else {
		if err := report.WriteText(os.Stdout); err != nil {
			fatalf("write report: %v", err)
		}
		if alertRes != nil {
			if err := alertRes.Err(); err != nil {
				fmt.Printf("\nalert cross-check: %v\n", err)
			} else {
				fmt.Printf("\nalert cross-check: clean (%d alerts matched, %d incidents matched)\n",
					alertRes.AlertsMatched, alertRes.IncidentsMatched)
			}
		}
		crossCheck(records, events, *csvPath)
	}
	code := report.ExitCode()
	if alertRes != nil && !alertRes.Ok() && code == 0 {
		code = 2
	}
	os.Exit(code)
}

// runExplain resolves node@period against the flight stream and the
// provenance trace, and prints the causal chain behind the cap the
// node ran under at that period.
func runExplain(records []flight.DecisionRecord, tracePath, target string) error {
	at := strings.LastIndexByte(target, '@')
	if at <= 0 {
		return fmt.Errorf("bad -explain target %q: want node@period", target)
	}
	node := target[:at]
	period, err := strconv.Atoi(target[at+1:])
	if err != nil {
		return fmt.Errorf("bad -explain target %q: %v", target, err)
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return err
	}
	tr, err := provenance.LoadTrace(f)
	_ = f.Close()
	if err != nil {
		return fmt.Errorf("%s: %w", tracePath, err)
	}
	var rec *flight.DecisionRecord
	for i := range records {
		if records[i].Period == period {
			rec = &records[i]
			break
		}
	}
	if rec == nil {
		return fmt.Errorf("flight record has no period %d", period)
	}
	if rec.CauseID == "" {
		fmt.Printf("%s@%d: cap %.1f W is the initial assignment (no traced cause)\n",
			node, period, rec.SetpointW)
		return nil
	}
	chain := tr.Chain(rec.CauseID)
	if chain == nil {
		return fmt.Errorf("cause %s of period %d is not in the trace", rec.CauseID, period)
	}
	if sp := tr.Span(rec.CauseID); sp != nil && sp.Node != "" && sp.Node != node {
		return fmt.Errorf("cause %s belongs to node %s, not %s — wrong -flight stream?", rec.CauseID, sp.Node, node)
	}
	fmt.Printf("%s@%d: cap %.1f W (cause %s, class %s)\n",
		node, period, rec.SetpointW, rec.CauseID, tr.RootClass(rec.CauseID))
	fmt.Printf("  %s\n", provenance.FormatChain(chain))
	return nil
}

func readFlight(path string) ([]flight.DecisionRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	records, err := flight.ReadRecords(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return records, err
}

// crossCheck prints consistency notes between the three inputs; purely
// informational, never affects the exit code.
func crossCheck(records []flight.DecisionRecord, events []telemetry.Event, csvPath string) {
	if len(events) > 0 {
		periodStarts := 0
		for _, e := range events {
			if e.Type == telemetry.EventPeriodStart {
				periodStarts++
			}
		}
		if periodStarts > 0 && periodStarts != len(records) {
			fmt.Printf("\nnote: events stream covers %d periods but the flight record has %d — inputs may be from different runs\n",
				periodStarts, len(records))
		}
	}
	if csvPath != "" {
		rows, err := countCSVRows(csvPath)
		if err != nil {
			fmt.Printf("\nnote: could not read CSV %s: %v\n", csvPath, err)
		} else if rows != len(records) {
			fmt.Printf("\nnote: CSV has %d data rows but the flight record has %d — inputs may be from different runs\n",
				rows, len(records))
		}
	}
}

func countCSVRows(path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	r := csv.NewReader(f)
	r.FieldsPerRecord = -1
	rows := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			_ = f.Close()
			return 0, err
		}
		rows++
	}
	if rows > 0 {
		rows-- // header
	}
	return rows, f.Close()
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "capgpu-doctor: "+format+"\n", args...)
	os.Exit(1)
}
