// capgpu-trace is the decision-provenance explain engine: it replays a
// trace JSONL stream (capgpu-rack -trace) together with the per-node
// flight records (-flight-dir) into human-readable causal chains and
// an end-of-run attribution table — which root cause (policy op,
// heartbeat loss, drain ramp, periodic reallocation) each cap change,
// node-period, and watt-hour traces back to.
//
//	capgpu-trace -trace trace.jsonl -flight-dir dir
//	    print the attribution table (periods/energy per root cause)
//	-explain node@period
//	    print the causal chain behind that node's cap at that period,
//	    e.g. "budget@4310 [budget*5600] → reallocation r17@4310 →
//	    node n002 cap 310→268 W → settled in 3 periods"
//	-verify
//	    check every cap change in every flight stream is attributed to
//	    a cap-change span (exit 1 on any unattributed change)
//	-json
//	    machine-readable output (attribution rows or explain chain)
//
// Exit codes: 0 clean, 1 verification failed, 2 usage or I/O error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/flight"
	"repro/internal/provenance"
)

func main() {
	tracePath := flag.String("trace", "", "trace JSONL stream (required)")
	flightDir := flag.String("flight-dir", "", "directory of per-node <node>.flight.jsonl streams")
	explain := flag.String("explain", "", "explain one cap: node@period (e.g. n002@4310)")
	verify := flag.Bool("verify", false, "verify every cap change is attributed; exit 1 otherwise")
	jsonOut := flag.Bool("json", false, "machine-readable output")
	periodS := flag.Float64("period-seconds", 4, "control period length for energy integration")
	epsilon := flag.Float64("epsilon", provenance.DefaultEpsilonW, "smallest |Δcap| (W) that counts as a change")
	flag.Parse()

	if *tracePath == "" {
		fmt.Fprintln(os.Stderr, "capgpu-trace: -trace is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, err := provenance.LoadTrace(f)
	_ = f.Close()
	if err != nil {
		fatal(err)
	}

	flights, err := loadFlights(*flightDir)
	if err != nil {
		fatal(err)
	}

	switch {
	case *explain != "":
		if err := runExplain(tr, flights, *explain, *jsonOut); err != nil {
			fatal(err)
		}
	case *verify:
		if !runVerify(tr, flights, *epsilon) {
			os.Exit(1)
		}
	default:
		runTable(tr, flights, *periodS, *jsonOut)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "capgpu-trace: %v\n", err)
	os.Exit(2)
}

// loadFlights reads every <node>.flight.jsonl under dir ("" = none).
func loadFlights(dir string) (map[string][]flight.DecisionRecord, error) {
	out := map[string][]flight.DecisionRecord{}
	if dir == "" {
		return out, nil
	}
	matches, err := filepath.Glob(filepath.Join(dir, "*.flight.jsonl"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	for _, path := range matches {
		node := strings.TrimSuffix(filepath.Base(path), ".flight.jsonl")
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		recs, err := flight.ReadRecords(f)
		_ = f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out[node] = recs
	}
	return out, nil
}

// runExplain resolves node@period to its flight record and prints the
// causal chain behind the cap it ran under.
func runExplain(tr *provenance.Trace, flights map[string][]flight.DecisionRecord, target string, jsonOut bool) error {
	node, period, err := parseTarget(target)
	if err != nil {
		return err
	}
	recs, ok := flights[node]
	if !ok {
		return fmt.Errorf("no flight stream for node %q (need -flight-dir)", node)
	}
	var rec *flight.DecisionRecord
	for i := range recs {
		if recs[i].Period == period {
			rec = &recs[i]
			break
		}
	}
	if rec == nil {
		return fmt.Errorf("node %s has no flight record for period %d", node, period)
	}
	if rec.CauseID == "" {
		if jsonOut {
			return json.NewEncoder(os.Stdout).Encode(map[string]any{
				"node": node, "period": period, "setpoint_w": rec.SetpointW, "cause": nil,
			})
		}
		fmt.Printf("%s@%d: cap %.1f W is the initial assignment (no traced cause)\n",
			node, period, rec.SetpointW)
		return nil
	}
	chain := tr.Chain(rec.CauseID)
	if chain == nil {
		return fmt.Errorf("cause %s of %s@%d is not in the trace", rec.CauseID, node, period)
	}
	if jsonOut {
		return json.NewEncoder(os.Stdout).Encode(map[string]any{
			"node": node, "period": period, "setpoint_w": rec.SetpointW,
			"cause": rec.CauseID, "class": tr.RootClass(rec.CauseID), "chain": chain,
		})
	}
	fmt.Printf("%s@%d: cap %.1f W (cause %s, class %s)\n",
		node, period, rec.SetpointW, rec.CauseID, tr.RootClass(rec.CauseID))
	fmt.Printf("  %s\n", provenance.FormatChain(chain))
	return nil
}

// parseTarget splits "node@period".
func parseTarget(s string) (node string, period int, err error) {
	at := strings.LastIndexByte(s, '@')
	if at <= 0 {
		return "", 0, fmt.Errorf("bad -explain target %q: want node@period", s)
	}
	period, err = strconv.Atoi(s[at+1:])
	if err != nil {
		return "", 0, fmt.Errorf("bad -explain target %q: %v", s, err)
	}
	return s[:at], period, nil
}

// runVerify checks every node's flight stream; true = fully attributed.
func runVerify(tr *provenance.Trace, flights map[string][]flight.DecisionRecord, epsilon float64) bool {
	if len(flights) == 0 {
		fmt.Fprintln(os.Stderr, "capgpu-trace: -verify needs -flight-dir")
		os.Exit(2)
	}
	names := make([]string, 0, len(flights))
	for n := range flights {
		names = append(names, n)
	}
	sort.Strings(names)
	total, changes := 0, 0
	for _, n := range names {
		problems := tr.VerifyAttribution(n, flights[n], epsilon)
		for _, p := range problems {
			fmt.Println("UNATTRIBUTED:", p)
		}
		total += len(problems)
		for i := 1; i < len(flights[n]); i++ {
			d := flights[n][i].SetpointW - flights[n][i-1].SetpointW
			if d >= epsilon || -d >= epsilon {
				changes++
			}
		}
	}
	if total > 0 {
		fmt.Printf("FAIL: %d attribution problem(s) across %d cap change(s)\n", total, changes)
		return false
	}
	fmt.Printf("OK: %d cap change(s) across %d node(s), all attributed\n", changes, len(names))
	return true
}

// runTable prints the end-of-run attribution table.
func runTable(tr *provenance.Trace, flights map[string][]flight.DecisionRecord, periodS float64, jsonOut bool) {
	rows := tr.Attribution(flights, periodS)
	if jsonOut {
		_ = json.NewEncoder(os.Stdout).Encode(rows)
		return
	}
	fmt.Printf("%d spans", len(tr.Spans))
	if len(flights) > 0 {
		fmt.Printf(", %d flight stream(s)", len(flights))
	}
	fmt.Println()
	fmt.Print(provenance.FormatAttribution(rows))
}
