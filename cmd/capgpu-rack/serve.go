// serve.go is capgpu-rack's daemon mode: a long-running control plane
// with churn-tolerant membership, hot reconfiguration over an HTTP
// policy API, crash-recovery checkpoints, and a deterministic soak
// harness gated by the offline doctor. The seeded simulation stays
// inside internal/controlplane; this file owns only wall-clock pacing,
// signals, sockets, and files.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"syscall"
	"time"

	"repro/internal/controlplane"
	"repro/internal/experiments"
	"repro/internal/flight"
	"repro/internal/provenance"
	"repro/internal/runtimeobs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// serveOptions is the flag surface of -serve / -soak mode.
type serveOptions struct {
	seed            int64
	nodes           int
	budgetW         float64 // 0 = derive from the fleet size
	periods         int     // 0 = run until a signal arrives
	workers         int
	schedule        string
	apiAddr         string
	metricsAddr     string
	pprofOn         bool
	eventsPath      string
	snapshotPath    string
	checkpointPath  string
	checkpointEvery int
	resume          bool
	flightDir       string
	tracePath       string
	pace            time.Duration
	soak            bool
}

// soakLoad is the canonical soak traffic shape: a full diurnal cycle
// across the run plus bursty per-node windows.
func soakLoad(periods int) controlplane.LoadSpec {
	return controlplane.LoadSpec{DiurnalAmp: 0.35, DiurnalPeriods: periods, BurstProb: 0.1, BurstAmp: 0.8}
}

// runServe builds (or restores) the control-plane daemon, steps it to
// the horizon or until SIGINT/SIGTERM, and tears everything down in
// order: finish the in-flight period, flush the event stream, write
// the metrics snapshot and a final checkpoint, then exit 0.
func runServe(o serveOptions) error {
	if o.nodes <= 0 {
		o.nodes = 6
	}
	if o.budgetW <= 0 {
		// Headroom for the soak's joins: churn peaks above the initial
		// fleet size, and admission is checked against this budget.
		o.budgetW = float64(o.nodes+2) * experiments.DefaultNodeBudgetW
	}
	spec := controlplane.Spec{
		Seed: o.seed, Nodes: o.nodes, BudgetW: o.budgetW,
		Workers: o.workers, Schedule: o.schedule,
		CheckpointEvery: o.checkpointEvery,
	}
	if o.soak {
		if o.periods <= 0 {
			o.periods = controlplane.DayPeriods
		}
		if o.schedule != "" {
			return fmt.Errorf("-soak generates its own schedule; drop -schedule")
		}
		sched, err := controlplane.SoakSchedule(o.periods, o.nodes, o.budgetW)
		if err != nil {
			return err
		}
		spec.Schedule = sched
		spec.Load = soakLoad(o.periods)
		// Diurnal carbon/price curves over the soak day, so the energy
		// ledger exercises weighted attribution end to end.
		spec.Energy = controlplane.EnergySpec{
			CarbonBase: 400, CarbonAmp: 0.3,
			PriceBase: 0.08, PriceAmp: 0.5,
			DiurnalPeriods: o.periods,
		}
		if spec.CheckpointEvery == 0 {
			spec.CheckpointEvery = 500
		}
	}

	// Provenance tracer: soak always traces (the verdict includes the
	// zero-unattributed attribution gate, and its JSONL tees into
	// memory); serve traces when -trace names a destination. Restore
	// replays the op log through the same code paths, so a resumed run
	// re-mints the byte-identical trace into these fresh sinks.
	var traceBuf bytes.Buffer
	var traceFile *os.File
	var tracer *provenance.Tracer
	if o.soak || o.tracePath != "" {
		var tsinks []io.Writer
		if o.soak {
			tsinks = append(tsinks, &traceBuf)
		}
		if o.tracePath != "" {
			f, err := os.Create(o.tracePath)
			if err != nil {
				return err
			}
			traceFile = f
			tsinks = append(tsinks, f)
		}
		tracer = provenance.New(provenance.Config{JSONL: io.MultiWriter(tsinks...)})
	}

	// Telemetry: the JSONL stream tees into memory so the soak gate can
	// replay it through the doctor without re-reading files.
	start := time.Now()
	var eventsBuf bytes.Buffer
	var eventsFile *os.File
	cfg := telemetry.Config{Clock: func() float64 { return time.Since(start).Seconds() }}
	if o.soak {
		// The online alert engine runs at the same 3 % cap slack the
		// soak gate hands the offline doctor, so cap-sustain windows and
		// cap-violation incidents diagnose the same pathology and the
		// alert↔doctor correspondence check is apples to apples.
		cfg.Alerts = &telemetry.AlertConfig{CapSlackFrac: 0.03}
	}
	if tracer != nil && cfg.Alerts != nil {
		cfg.Alerts.Hook = func(e telemetry.Event) {
			tracer.OnAlertEvent(e.Detail, e.Node, e.Period, e.Value,
				e.Type == telemetry.EventAlertFiring)
		}
	}
	var sinks []io.Writer
	if o.eventsPath != "" {
		f, err := os.Create(o.eventsPath)
		if err != nil {
			return err
		}
		eventsFile = f
		sinks = append(sinks, f)
	}
	if o.soak {
		sinks = append(sinks, &eventsBuf)
	}
	if len(sinks) > 0 {
		cfg.JSONL = io.MultiWriter(sinks...)
	}
	hub := telemetry.New(cfg)

	// Flight recorders: per-node JSONL under -flight-dir, teed into
	// memory for the soak gate.
	flightBufs := map[string]*bytes.Buffer{}
	var flightFiles []*os.File
	flightWriter := func(node string) (io.Writer, error) {
		buf := &bytes.Buffer{}
		flightBufs[node] = buf
		if o.flightDir == "" {
			return buf, nil
		}
		f, err := os.Create(filepath.Join(o.flightDir, node+".flight.jsonl"))
		if err != nil {
			return nil, err
		}
		flightFiles = append(flightFiles, f)
		return io.MultiWriter(f, buf), nil
	}
	if o.flightDir != "" {
		if err := os.MkdirAll(o.flightDir, 0o755); err != nil {
			return err
		}
	}
	deps := experiments.NewDaemonDeps(o.seed, hub, flightWriter)
	deps.Tracer = tracer

	// Build fresh, or restore from the checkpoint and replay: the
	// restored daemon re-emits the replayed prefix into the sinks above,
	// so artifacts are complete whichever path ran.
	var d *controlplane.Daemon
	if o.resume {
		if o.checkpointPath == "" {
			return fmt.Errorf("-resume requires -checkpoint")
		}
		cp, err := controlplane.LoadCheckpoint(o.checkpointPath)
		if err != nil {
			return fmt.Errorf("resume: %w (cold-start by dropping -resume)", err)
		}
		if o.periods > 0 {
			if err := cp.ValidateHorizon(o.periods); err != nil {
				return err
			}
		}
		d, err = controlplane.Resume(cp, deps)
		if err != nil {
			return err
		}
		fmt.Printf("restored from %s at period %d (epoch %d)\n", o.checkpointPath, d.Period(), d.Epoch())
	} else {
		var err error
		d, err = controlplane.New(spec, deps)
		if err != nil {
			return err
		}
	}
	d.SetCheckpointPath(o.checkpointPath)

	if o.apiAddr != "" {
		addr, err := telemetry.ServeHandler(controlplane.APIHandler(d), o.apiAddr)
		if err != nil {
			return err
		}
		fmt.Printf("policy API: http://%s/policy (POST patches, GET status), /membership\n", addr)
	}
	if o.metricsAddr != "" {
		var ts telemetry.TraceSource
		if tracer != nil {
			ts = tracer
		}
		handler := runtimeobs.Attach(hub.Registry()).Wrap(
			withPprof(telemetry.HandlerWithTrace(hub, ts), o.pprofOn))
		addr, err := telemetry.ServeHandler(handler, o.metricsAddr)
		if err != nil {
			return err
		}
		fmt.Printf("telemetry: serving http://%s/metrics (/events, /trace, /healthz)\n", addr)
	}

	mode := "serve"
	if o.soak {
		mode = "soak"
	}
	horizon := "until SIGINT/SIGTERM"
	if o.periods > 0 {
		horizon = fmt.Sprintf("%d periods", o.periods)
	}
	st := d.Status()
	fmt.Printf("%s: %d members, budget %.0f W, %s\n", mode, len(st.Members), st.BudgetW, horizon)

	// The control loop. A signal finishes the in-flight period — Step is
	// never interrupted mid-period — then falls into the shutdown tail.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigCh)
	interrupted := false
loop:
	for o.periods == 0 || d.Period() < o.periods {
		select {
		case sig := <-sigCh:
			fmt.Printf("\n%s: finishing period %d and shutting down\n", sig, d.Period())
			interrupted = true
			break loop
		default:
		}
		if err := d.Step(); err != nil {
			return err
		}
		if o.pace > 0 {
			time.Sleep(o.pace)
		}
	}

	// Shutdown tail: flush streams with sticky-error reporting, write
	// the snapshot and the final checkpoint. A clean SIGINT exit is
	// exit 0; only broken sinks or an unwritable checkpoint fail it.
	if err := hub.Finish(); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	if eventsFile != nil {
		if err := eventsFile.Close(); err != nil {
			return err
		}
		fmt.Println("events written to", o.eventsPath)
	}
	if tracer != nil {
		last := d.Period() - 1
		if last < 0 {
			last = 0
		}
		if err := tracer.Finish(last); err != nil {
			return fmt.Errorf("trace stream: %w", err)
		}
		if traceFile != nil {
			if err := traceFile.Close(); err != nil {
				return err
			}
			fmt.Println("trace written to", o.tracePath)
		}
	}
	if err := d.FlightErr(); err != nil {
		return fmt.Errorf("flight stream: %w", err)
	}
	for _, f := range flightFiles {
		if err := f.Close(); err != nil {
			return err
		}
	}
	if err := d.CheckpointErr(); err != nil {
		return fmt.Errorf("checkpoint stream: %w", err)
	}
	if o.snapshotPath != "" {
		f, err := os.Create(o.snapshotPath)
		if err != nil {
			return err
		}
		werr := hub.Registry().WritePrometheus(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Println("metrics snapshot written to", o.snapshotPath)
	}
	if o.checkpointPath != "" {
		cp := d.Checkpoint()
		if err := controlplane.SaveCheckpoint(o.checkpointPath, cp); err != nil {
			return err
		}
		fmt.Printf("checkpoint written to %s (period %d)\n", o.checkpointPath, d.Period())
	}

	if o.soak && !interrupted {
		return soakVerdict(d, hub, &eventsBuf, flightBufs, &traceBuf, o.flightDir)
	}
	st = d.Status()
	fmt.Printf("stopped at period %d, epoch %d, %d members\n", st.Period, st.Epoch, len(st.Members))
	return nil
}

// soakVerdict is the soak gate: the run summary, then the offline
// doctor over every member's flight record — live or released — with
// the node's own events plus rack-scope events as context, then the
// telemetry-v2 checks: every online alert must correspond to a doctor
// incident (and vice versa for sustained ones), and the energy
// ledger's per-node Wh must agree with trapezoidal integration of the
// flight records. Any unexplained incident, alert mismatch, energy
// disagreement, rejected op, budget-invariant violation, or
// unattributed cap change is a non-zero exit.
func soakVerdict(d *controlplane.Daemon, hub *telemetry.Hub, eventsBuf *bytes.Buffer, flightBufs map[string]*bytes.Buffer, traceBuf *bytes.Buffer, artifactDir string) error {
	applied := map[controlplane.OpKind]int{}
	rejected := 0
	for _, op := range d.OpLog() {
		if op.Applied {
			applied[op.Op.Kind]++
		} else {
			rejected++
			fmt.Printf("REJECTED op: %+v\n", op)
		}
	}
	viol, violDetail := d.InvariantViolations()
	st := d.Status()
	fmt.Println()
	fmt.Print(trace.Table(
		[]string{"periods", "epoch", "members", "released", "joins", "drains", "kills", "reconfigs", "rejected", "invariant-violations"},
		[][]string{{
			fmt.Sprintf("%d", st.Period),
			fmt.Sprintf("%d", st.Epoch),
			fmt.Sprintf("%d", len(st.Members)),
			fmt.Sprintf("%d", len(d.Released())),
			fmt.Sprintf("%d", applied[controlplane.OpJoin]),
			fmt.Sprintf("%d", applied[controlplane.OpDrain]),
			fmt.Sprintf("%d", applied[controlplane.OpKill]),
			fmt.Sprintf("%d", applied[controlplane.OpBudget]+applied[controlplane.OpCap]+applied[controlplane.OpSLO]),
			fmt.Sprintf("%d", rejected),
			fmt.Sprintf("%d", viol),
		}}))
	if viol > 0 {
		fmt.Println("invariant detail:", violDetail)
	}

	events, err := telemetry.ReadEvents(bytes.NewReader(eventsBuf.Bytes()))
	if err != nil {
		return err
	}
	names := make([]string, 0, len(flightBufs))
	for name := range flightBufs {
		//lint:ignore determinism names are sorted immediately below
		names = append(names, name)
	}
	sort.Strings(names)
	alertWindows := flight.AlertWindows(events)
	unexplained, alertMismatches, energyMismatches := 0, 0, 0
	var trapTotalWh float64
	flightRecs := map[string][]flight.DecisionRecord{}
	fmt.Println()
	for _, name := range names {
		recs, err := flight.ReadRecords(bytes.NewReader(flightBufs[name].Bytes()))
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if len(recs) == 0 {
			continue
		}
		flightRecs[name] = recs
		var nodeEvents []telemetry.Event
		for _, ev := range events {
			if ev.Node == name || ev.Node == "rack" {
				nodeEvents = append(nodeEvents, ev)
			}
		}
		// The soak's injected load (±80 % bursts on a diurnal swing) puts
		// the plant's period-to-period noise floor near ±5 % of a node
		// cap, so the gate runs the doctor at a 3 % slack on both meters
		// instead of the 1 %/2 % defaults: tight enough that a stuck
		// controller or an escaped reallocation still fails the day,
		// loose enough that threshold-grazing noise over 21600 periods
		// does not. The written artifacts keep full resolution —
		// capgpu-doctor -slack reruns any stricter analysis offline.
		report, err := flight.Diagnose(flight.DoctorInput{
			Records: recs, Events: nodeEvents,
			MeasuredSlackFrac: 0.03, TrueSlackFrac: 0.03,
		})
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		verdict := "clean"
		if len(report.Incidents) > 0 {
			verdict = fmt.Sprintf("%d incidents explained", len(report.Incidents))
		}
		if report.Unexplained > 0 {
			verdict = fmt.Sprintf("%d UNEXPLAINED of %d incidents", report.Unexplained, len(report.Incidents))
			unexplained += report.Unexplained
			for _, inc := range report.Incidents {
				if !inc.Explained {
					fmt.Printf("  %s: [%s] periods %d-%d: %s\n", name, inc.Kind, inc.StartPeriod, inc.EndPeriod, inc.Detail)
				}
			}
		}
		fmt.Printf("doctor %s: %s\n", name, verdict)

		// Online/offline correspondence: the alert engine and the doctor
		// looked at the same run through different instruments, so their
		// windows must overlap (after margin widening) in both directions.
		ac := flight.CheckAlerts(flight.AlertCheckInput{
			Node: name, Alerts: alertWindows, Incidents: report.Incidents,
		})
		if err := ac.Err(); err != nil {
			alertMismatches++
			fmt.Printf("  %s: %v\n", name, err)
		}

		// Energy agreement: the ledger accumulated each period's EnergyJ;
		// trapezoidal integration of the flight record's true-power series
		// is an independent estimate that differs only by half-period edge
		// effects, far inside the relative tolerance.
		trapWh := trapezoidWh(recs)
		trapTotalWh += trapWh
		ledgerWh := hub.NodeWh(name)
		if relDiff(ledgerWh, trapWh) > 1e-3 {
			energyMismatches++
			fmt.Printf("  %s: ledger %.3f Wh vs trapezoid %.3f Wh\n", name, ledgerWh, trapWh)
		}

		if artifactDir != "" {
			b, err := json.MarshalIndent(report, "", "  ")
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(artifactDir, "doctor-"+name+".json"), append(b, '\n'), 0o644); err != nil {
				return err
			}
		}
	}

	ledgerTotal := hub.LedgerTotalWh()
	fmt.Printf("\nenergy: ledger %.1f Wh, trapezoid %.1f Wh, %d fired alerts across %d nodes\n",
		ledgerTotal, trapTotalWh, len(telemetry.FiredAlerts(events)), len(names))
	if relDiff(ledgerTotal, trapTotalWh) > 1e-3 {
		energyMismatches++
		fmt.Printf("TOTAL energy disagreement: ledger %.3f Wh vs trapezoid %.3f Wh\n", ledgerTotal, trapTotalWh)
	}

	// Provenance gate: replay the trace stream against the flight
	// records — every cap change ≥ ε must point at a cap-change span
	// whose period, node, and parent all agree with the record.
	unattributed := 0
	ptr, err := provenance.LoadTrace(bytes.NewReader(traceBuf.Bytes()))
	if err != nil {
		return fmt.Errorf("trace replay: %w", err)
	}
	for _, name := range names {
		for _, p := range ptr.VerifyAttribution(name, flightRecs[name], provenance.DefaultEpsilonW) {
			unattributed++
			fmt.Println("UNATTRIBUTED:", p)
		}
	}
	attrib := ptr.Attribution(flightRecs, 4)
	attribTable := provenance.FormatAttribution(attrib)
	fmt.Printf("\nprovenance: %d spans, %d unattributed cap change(s)\n%s",
		len(ptr.Spans), unattributed, attribTable)

	if artifactDir != "" {
		if err := writeSoakArtifacts(hub, alertWindows, artifactDir); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(artifactDir, "trace.jsonl"), traceBuf.Bytes(), 0o644); err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(artifactDir, "attribution-table.txt"), []byte(attribTable), 0o644); err != nil {
			return err
		}
	}
	if unexplained > 0 || rejected > 0 || viol > 0 || alertMismatches > 0 || energyMismatches > 0 || unattributed > 0 {
		return fmt.Errorf("soak failed: %d unexplained incidents, %d rejected ops, %d invariant violations, %d alert mismatches, %d energy mismatches, %d unattributed cap changes",
			unexplained, rejected, viol, alertMismatches, energyMismatches, unattributed)
	}
	fmt.Println("\nsoak clean: every incident explained, all ops applied, budget invariant held, alerts match the doctor, ledger matches integration, every cap change attributed")
	return nil
}

// trapezoidWh integrates a flight record's true-power series over time
// by the trapezoid rule, in watt-hours.
func trapezoidWh(recs []flight.DecisionRecord) float64 {
	var joules float64
	for i := 1; i < len(recs); i++ {
		dt := recs[i].TimeS - recs[i-1].TimeS
		joules += dt * (recs[i].TruePowerW + recs[i-1].TruePowerW) / 2
	}
	if len(recs) > 1 {
		// The records are period means stamped at period end; the run's
		// first and last half-periods fall outside the trapezoid span, so
		// put them back with the edge means.
		dt := (recs[len(recs)-1].TimeS - recs[0].TimeS) / float64(len(recs)-1)
		joules += dt / 2 * (recs[0].TruePowerW + recs[len(recs)-1].TruePowerW)
	} else if len(recs) == 1 {
		joules = recs[0].TruePowerW * 4
	}
	return joules / 3600
}

func relDiff(a, b float64) float64 {
	scale := max(abs(a), abs(b))
	if scale == 0 {
		return 0
	}
	return abs(a-b) / scale
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// writeSoakArtifacts exports the telemetry-v2 run products next to the
// flight records: the 100× downsampled series (CSV, one row per
// bucket) and the reconstructed alert windows (JSON).
func writeSoakArtifacts(hub *telemetry.Hub, alerts []flight.AlertWindow, dir string) error {
	f, err := os.Create(filepath.Join(dir, "series-res100.csv"))
	if err != nil {
		return err
	}
	werr := hub.WriteStoreCSV(f, 100)
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr != nil {
		return werr
	}
	if alerts == nil {
		alerts = []flight.AlertWindow{}
	}
	b, err := json.MarshalIndent(alerts, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(filepath.Join(dir, "alerts.json"), append(b, '\n'), 0o644); err != nil {
		return err
	}
	lf, err := os.Create(filepath.Join(dir, "energy-ledger.txt"))
	if err != nil {
		return err
	}
	_, werr = lf.WriteString(telemetry.FormatLedgerTable(hub.LedgerTable()))
	if cerr := lf.Close(); werr == nil {
		werr = cerr
	}
	return werr
}
