// Command capgpu-rack runs a rack of CapGPU-managed servers under one
// shared power budget, comparing (or running a single) coordinator
// allocation policy. This is the deployment shape the paper's
// introduction motivates: power oversubscription behind a shared
// breaker, with per-server capping as the enforcement layer.
//
// Usage:
//
//	capgpu-rack [-budget W] [-policy name|all] [-periods N] [-seed N]
//
// The rack is three servers with heavy / medium / light load (3 / 2 / 1
// busy GPUs); policies: uniform, demand, priority.
//
// Fleet mode and parallel stepping:
//
//	-nodes N     run a synthetic fleet of N nodes (heavy/medium/light
//	             classes round-robin) instead of the 3-server rack;
//	             -budget defaults to 950 W per node when left unset
//	-workers W   per-node control loops stepped by W workers
//	             (0 = GOMAXPROCS, 1 = sequential); output is
//	             byte-identical at every worker count
//
// Rack-plane faults and telemetry (see DESIGN.md):
//
//	-faults string           fault DSL; server-dropout targets are node
//	                         indices (0 heavy, 1 medium, 2 light)
//	-metrics-addr string     serve /metrics, /events, /healthz during and
//	                         after the run (stays up until SIGINT or -hold)
//	-events string           append the JSONL event stream to this file
//	-metrics-snapshot string write the final Prometheus exposition here
//	-hold duration           with -metrics-addr, serve this long after the
//	                         run instead of waiting for SIGINT
//	-pprof                   with -metrics-addr, also serve net/http/pprof
//	                         under /debug/pprof/
//
// Daemon mode (-serve) runs the long-lived control plane instead of a
// fixed experiment: nodes join and drain at barriers, the allocation
// policy is hot-swappable over a REST API, and versioned checkpoints
// make the process crash-recoverable (see DESIGN.md, "Control plane &
// daemon lifecycle"):
//
//	-serve                 long-running daemon; -periods 0 = run until
//	                       SIGINT/SIGTERM (graceful: finish the period,
//	                       flush, checkpoint, exit 0)
//	-soak                  deterministic soak: a seeded churn/reconfig
//	                       schedule plus diurnal/bursty load for one
//	                       simulated day, gated by capgpu-doctor
//	-api-addr string       control API: GET /policy (status), POST
//	                       /policy and /membership (validated, queued,
//	                       applied at the next reallocation barrier)
//	-schedule string       churn DSL `kind@period[:target][*value]`:
//	                       join, drain, kill, revive, budget, cap, slo
//	                       (e.g. "join@40:heavy;kill@120:n000;
//	                       budget@60*2400;cap@90:n002*700")
//	-checkpoint string     checkpoint file (boundaries + shutdown)
//	-checkpoint-every N    checkpoint cadence in periods
//	-resume                restore from -checkpoint; the restored run
//	                       re-emits byte-identical telemetry and flight
//	                       records at any -workers count
//	-flight-dir string     per-node flight JSONL (+ soak doctor reports)
//	-trace string          decision-provenance trace JSONL: one span per
//	                       policy op, reallocation, and cap change, for
//	                       capgpu-trace to replay into causal chains
//	-pace duration         wall-clock pacing per period (4s = real time)
//
// In daemon mode crashes are injected through the schedule DSL
// (kill@k:name), so -faults is rejected there.
package main

import (
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	budget := flag.Float64("budget", 2850, "rack power budget in Watts")
	policy := flag.String("policy", "all", "allocation policy: uniform, demand, priority, all")
	periods := flag.Int("periods", 60, "server control periods (T = 4 s each)")
	seed := flag.Int64("seed", 33, "simulation seed")
	faultsDSL := flag.String("faults", "", "rack fault DSL ("+faults.KindNames()+"); server-dropout targets node indices")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /events, /healthz on this address (e.g. :9090)")
	eventsPath := flag.String("events", "", "write the JSONL telemetry event stream to this path")
	snapshotPath := flag.String("metrics-snapshot", "", "write the final Prometheus exposition to this path")
	hold := flag.Duration("hold", 0, "with -metrics-addr, keep serving this long after the run (0 = until SIGINT)")
	pprofOn := flag.Bool("pprof", false, "with -metrics-addr, also serve net/http/pprof under /debug/pprof/")
	nodes := flag.Int("nodes", 0, "fleet mode: run N synthetic nodes instead of the 3-server rack")
	workers := flag.Int("workers", 1, "worker goroutines stepping node control loops (0 = GOMAXPROCS)")
	serve := flag.Bool("serve", false, "daemon mode: long-running control plane with membership, policy API, and checkpoints")
	soak := flag.Bool("soak", false, "deterministic soak: seeded churn/reconfig schedule + diurnal/bursty load, gated by the doctor")
	apiAddr := flag.String("api-addr", "", "with -serve/-soak, serve the policy/membership API on this address (e.g. :9091)")
	schedule := flag.String("schedule", "", "with -serve, a churn/reconfig schedule in controlplane DSL (e.g. \"join@8;drain@20:n001\")")
	checkpoint := flag.String("checkpoint", "", "with -serve/-soak, checkpoint file (written at boundaries and on shutdown)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "with -serve/-soak, checkpoint cadence in periods (0 = shutdown only; soak defaults to 500)")
	resume := flag.Bool("resume", false, "with -serve/-soak, restore from -checkpoint instead of cold-starting")
	flightDir := flag.String("flight-dir", "", "with -serve/-soak, write per-node flight JSONL (and soak doctor reports) here")
	tracePath := flag.String("trace", "", "with -serve/-soak, write the decision-provenance trace JSONL here (for capgpu-trace)")
	pace := flag.Duration("pace", 0, "with -serve, wall-clock delay per control period (0 = free-running; 4s = real time)")
	workloadKind := flag.String("workload", "", "with -nodes, fleet workload family: cnn (default) or llm (continuous-batching LLM serving)")
	flag.Parse()

	if *pprofOn && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "capgpu-rack: -pprof requires -metrics-addr")
		os.Exit(1)
	}

	if *serve || *soak {
		if *faultsDSL != "" {
			fmt.Fprintln(os.Stderr, "capgpu-rack: daemon mode injects crashes via the schedule DSL (kill@k:node), not -faults")
			os.Exit(1)
		}
		// -periods keeps its classic default of 60 for batch runs; the
		// daemon treats an unset flag as "until signal" (serve) or one
		// simulated day (soak).
		servePeriods := 0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "periods" {
				servePeriods = *periods
			}
		})
		serveBudget := 0.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "budget" {
				serveBudget = *budget
			}
		})
		err := runServe(serveOptions{
			seed: *seed, nodes: *nodes, budgetW: serveBudget, periods: servePeriods,
			workers: *workers, schedule: *schedule, apiAddr: *apiAddr,
			metricsAddr: *metricsAddr, pprofOn: *pprofOn,
			eventsPath: *eventsPath, snapshotPath: *snapshotPath,
			checkpointPath: *checkpoint, checkpointEvery: *checkpointEvery,
			resume: *resume, flightDir: *flightDir, pace: *pace, soak: *soak,
			tracePath: *tracePath,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
			os.Exit(1)
		}
		return
	}

	var sched *faults.Schedule
	if *faultsDSL != "" {
		var err error
		sched, err = faults.Parse(*faultsDSL, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
			os.Exit(1)
		}
	}

	// Telemetry is opt-in; the wall clock is injected here at the cmd
	// layer, never inside the seeded packages. Counting from a
	// process-start origin keeps the clock monotonic (no NTP steps) with
	// full float64 resolution for sub-microsecond phase spans.
	var hub *telemetry.Hub
	var eventsFile *os.File
	if *metricsAddr != "" || *eventsPath != "" || *snapshotPath != "" {
		start := time.Now()
		cfg := telemetry.Config{Clock: func() float64 { return time.Since(start).Seconds() }}
		if *eventsPath != "" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
				os.Exit(1)
			}
			eventsFile = f
			cfg.JSONL = f
		}
		hub = telemetry.New(cfg)
	}
	if *metricsAddr != "" {
		addr, err := telemetry.ServeHandler(withPprof(telemetry.Handler(hub), *pprofOn), *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
			os.Exit(1)
		}
		extra := ""
		if *pprofOn {
			extra = ", /debug/pprof/"
		}
		fmt.Printf("telemetry: serving http://%s/metrics (/events, /healthz%s)\n\n", addr, extra)
	}

	if *nodes > 0 {
		// Fleet budget: an explicit -budget wins; otherwise scale the
		// default with the fleet (950 W per node) rather than inheriting
		// the 3-server rack's 2850 W.
		fleetBudget := 0.0
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "budget" {
				fleetBudget = *budget
			}
		})
		if err := runFleet(*seed, *periods, *nodes, *workers, fleetBudget, *policy, *workloadKind, sched, hub); err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
			os.Exit(1)
		}
		finishTelemetry(hub, eventsFile, *eventsPath, *snapshotPath, *metricsAddr, *hold)
		return
	}

	rows, err := experiments.ExtensionClusterOpts(*seed, *periods, *budget,
		experiments.ClusterOptions{Telemetry: hub, Faults: sched, Workers: *workers})
	if err != nil {
		fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
		os.Exit(1)
	}

	match := func(name string) bool {
		switch *policy {
		case "all":
			return true
		case "demand":
			return name == "demand-proportional"
		default:
			return name == *policy
		}
	}

	var out [][]string
	var picked []experiments.ClusterRow
	for _, r := range rows {
		if !match(r.Policy) {
			continue
		}
		picked = append(picked, r)
		out = append(out, []string{
			r.Policy,
			fmt.Sprintf("%.0f / %.0f", r.SteadyTotalW, r.BudgetW),
			fmt.Sprintf("%d", r.OverBudgetPeriods),
			fmt.Sprintf("%.0f", r.AggThroughput),
			fmt.Sprintf("%.0f / %.0f / %.0f", r.PerNodeCapW[0], r.PerNodeCapW[1], r.PerNodeCapW[2]),
		})
	}
	if len(picked) == 0 {
		fmt.Fprintf(os.Stderr, "capgpu-rack: unknown policy %q (uniform, demand, priority, all)\n", *policy)
		os.Exit(1)
	}
	fmt.Printf("Rack: 3 servers (heavy/medium/light), budget %.0f W, %d periods\n", *budget, *periods)
	if sched != nil {
		fmt.Printf("fault schedule: %s\n", sched.String())
	}
	fmt.Println()
	fmt.Print(trace.Table(
		[]string{"policy", "rack W (used/budget)", "over-budget", "rack img/s", "caps h/m/l (W)"},
		out))

	// Per-node control-loop health, the rack operator's end-of-run view:
	// the same violation rule the telemetry hub and metrics summary use,
	// so all three numbers agree.
	for _, r := range picked {
		var nodeRows [][]string
		for _, n := range r.Nodes {
			nodeRows = append(nodeRows, []string{
				n.Name,
				fmt.Sprintf("%d", n.Periods),
				fmt.Sprintf("%d", n.CapViolations),
				fmt.Sprintf("%d", n.SLOMisses),
				fmt.Sprintf("%d", n.DegradedPeriods),
				fmt.Sprintf("%d", n.FailSafeEntries),
				fmt.Sprintf("%d", n.UncontrolledPeriods),
			})
		}
		fmt.Printf("\nper-node telemetry summary — %s:\n", r.Policy)
		fmt.Print(trace.Table(
			[]string{"node", "periods", "cap-violations", "slo-misses", "degraded", "failsafe-entries", "uncontrolled"},
			nodeRows))
	}

	if *policy == "all" && len(rows) == 3 {
		best, bestT := "", math.Inf(-1)
		for _, r := range rows {
			if r.AggThroughput > bestT {
				best, bestT = r.Policy, r.AggThroughput
			}
		}
		fmt.Printf("\nhighest rack throughput under this budget: %s (%.0f img/s)\n", best, bestT)
	}

	finishTelemetry(hub, eventsFile, *eventsPath, *snapshotPath, *metricsAddr, *hold)
}

// finishTelemetry flushes the event stream, writes the optional
// Prometheus snapshot, and holds the HTTP endpoint — the common tail of
// the classic rack and fleet modes.
func finishTelemetry(hub *telemetry.Hub, eventsFile *os.File, eventsPath, snapshotPath, metricsAddr string, hold time.Duration) {
	if hub != nil {
		if err := hub.Finish(); err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-rack: event stream:", err)
			os.Exit(1)
		}
		if eventsFile != nil {
			if err := eventsFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
				os.Exit(1)
			}
			fmt.Println("\nevents written to", eventsPath)
		}
		if snapshotPath != "" {
			f, err := os.Create(snapshotPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
				os.Exit(1)
			}
			werr := hub.Registry().WritePrometheus(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
			if werr != nil {
				fmt.Fprintln(os.Stderr, "capgpu-rack:", werr)
				os.Exit(1)
			}
			fmt.Println("metrics snapshot written to", snapshotPath)
		}
	}
	if metricsAddr != "" {
		if hold > 0 {
			fmt.Printf("telemetry: holding the endpoint for %s\n", hold)
			time.Sleep(hold)
			return
		}
		fmt.Println("telemetry: endpoint stays up — SIGINT to exit")
		ch := make(chan os.Signal, 1)
		signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
		<-ch
	}
}

// runFleet is -nodes mode: one policy over a synthetic N-node fleet,
// stepped by the requested worker count.
func runFleet(seed int64, periods, nodes, workers int, budgetW float64, policy, workloadKind string, sched *faults.Schedule, hub *telemetry.Hub) error {
	var pol cluster.Policy
	switch policy {
	case "uniform":
		pol = cluster.Uniform{}
	case "demand", "demand-proportional", "all":
		// Fleet mode runs a single policy; the "all" default falls back
		// to the paper's recommended demand-proportional allocator.
		pol = cluster.DemandProportional{}
	case "priority":
		pol = cluster.Priority{}
	default:
		return fmt.Errorf("unknown policy %q (uniform, demand, priority)", policy)
	}
	row, err := experiments.RunScaleRack(seed, periods, nodes, pol,
		budgetW, experiments.ClusterOptions{Telemetry: hub, Faults: sched, Workers: workers, Workload: workloadKind})
	if err != nil {
		return err
	}
	fmt.Printf("Fleet: %d nodes (heavy/medium/light classes), budget %.0f W, %d periods, %d workers\n",
		row.Nodes, row.BudgetW, periods, row.Workers)
	if sched != nil {
		fmt.Printf("fault schedule: %s\n", sched.String())
	}
	fmt.Println()
	fmt.Print(trace.Table(
		[]string{"policy", "rack W (used/budget)", "over-budget", "rack img/s", "dead", "cap-violations", "degraded", "uncontrolled"},
		[][]string{{
			row.Policy,
			fmt.Sprintf("%.0f / %.0f", row.SteadyTotalW, row.BudgetW),
			fmt.Sprintf("%d", row.OverBudgetPeriods),
			fmt.Sprintf("%.0f", row.AggThroughput),
			fmt.Sprintf("%d", row.DeadNodes),
			fmt.Sprintf("%d", row.CapViolations),
			fmt.Sprintf("%d", row.DegradedPeriods),
			fmt.Sprintf("%d", row.Uncontrolled),
		}}))
	return nil
}

// withPprof mounts the hub handler at / and, when enabled, the pprof
// endpoints under /debug/pprof/ — kept at the cmd layer so the
// deterministic telemetry package never imports net/http/pprof.
func withPprof(h http.Handler, enable bool) http.Handler {
	if !enable {
		return h
	}
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
