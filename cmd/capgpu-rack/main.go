// Command capgpu-rack runs a rack of CapGPU-managed servers under one
// shared power budget, comparing (or running a single) coordinator
// allocation policy. This is the deployment shape the paper's
// introduction motivates: power oversubscription behind a shared
// breaker, with per-server capping as the enforcement layer.
//
// Usage:
//
//	capgpu-rack [-budget W] [-policy name|all] [-periods N] [-seed N]
//
// The rack is three servers with heavy / medium / light load (3 / 2 / 1
// busy GPUs); policies: uniform, demand, priority.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/experiments"
	"repro/internal/trace"
)

func main() {
	budget := flag.Float64("budget", 2850, "rack power budget in Watts")
	policy := flag.String("policy", "all", "allocation policy: uniform, demand, priority, all")
	periods := flag.Int("periods", 60, "server control periods (T = 4 s each)")
	seed := flag.Int64("seed", 33, "simulation seed")
	flag.Parse()

	rows, err := experiments.ExtensionCluster(*seed, *periods, *budget)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capgpu-rack:", err)
		os.Exit(1)
	}

	match := func(name string) bool {
		switch *policy {
		case "all":
			return true
		case "demand":
			return name == "demand-proportional"
		default:
			return name == *policy
		}
	}

	var out [][]string
	found := false
	for _, r := range rows {
		if !match(r.Policy) {
			continue
		}
		found = true
		out = append(out, []string{
			r.Policy,
			fmt.Sprintf("%.0f / %.0f", r.SteadyTotalW, r.BudgetW),
			fmt.Sprintf("%d", r.OverBudgetPeriods),
			fmt.Sprintf("%.0f", r.AggThroughput),
			fmt.Sprintf("%.0f / %.0f / %.0f", r.PerNodeCapW[0], r.PerNodeCapW[1], r.PerNodeCapW[2]),
		})
	}
	if !found {
		fmt.Fprintf(os.Stderr, "capgpu-rack: unknown policy %q (uniform, demand, priority, all)\n", *policy)
		os.Exit(1)
	}
	fmt.Printf("Rack: 3 servers (heavy/medium/light), budget %.0f W, %d periods\n\n", *budget, *periods)
	fmt.Print(trace.Table(
		[]string{"policy", "rack W (used/budget)", "over-budget", "rack img/s", "caps h/m/l (W)"},
		out))

	if *policy == "all" && len(rows) == 3 {
		best, bestT := "", math.Inf(-1)
		for _, r := range rows {
			if r.AggThroughput > bestT {
				best, bestT = r.Policy, r.AggThroughput
			}
		}
		fmt.Printf("\nhighest rack throughput under this budget: %s (%.0f img/s)\n", best, bestT)
	}
}
