// Command capgpu-sysid runs the paper's §4.2 system-identification
// procedure on the simulated testbed and prints the fitted linear power
// model (Fig. 2a) and the frequency-latency law fit (Fig. 2b).
//
// Usage:
//
//	capgpu-sysid [-seed N] [-workload name] [-levels N] [-dwell N]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/sysid"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	seed := flag.Int64("seed", 1, "simulation seed")
	wl := flag.String("workload", "swin_t", "workload for the latency fit (resnet50, swin_t, vgg16, googlenet)")
	levels := flag.Int("levels", 8, "excitation levels per knob")
	dwell := flag.Int("dwell", 4, "seconds to dwell per level")
	flag.Parse()

	// Full 4-knob identification on the evaluation testbed.
	s, err := sim.NewServer(sim.DefaultTestbed(*seed))
	if err != nil {
		fatal(err)
	}
	zoo := workload.Zoo()
	names := []string{"resnet50", "swin_t", "vgg16"}
	rates := []float64{250, 100, 130}
	for i := 0; i < 3; i++ {
		p, err := workload.NewPipeline(workload.PipelineConfig{
			Model: zoo[names[i]], Workers: 2, PreLatencyBase: 0.005,
			PreLatencyExp: 0.4, ArrivalRateMax: rates[i], ArrivalExp: 0.5,
			QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: *seed + int64(i),
		})
		if err != nil {
			fatal(err)
		}
		if err := s.AttachPipeline(i, p); err != nil {
			fatal(err)
		}
	}
	w, err := workload.NewCPUWorkload(workload.CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: *seed + 9})
	if err != nil {
		fatal(err)
	}
	s.AttachCPUWorkload(w)

	model, records, err := sysid.Identify(s, sysid.ExciteConfig{
		LevelsPerKnob: *levels, DwellSeconds: *dwell,
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("System identification (%d knobs, %d observations)\n\n", len(model.Gains), model.N)
	rows := [][]string{
		{"CPU", fmt.Sprintf("%.2f W/GHz", model.Gains[0])},
	}
	for i := 1; i < len(model.Gains); i++ {
		rows = append(rows, []string{fmt.Sprintf("GPU %d", i-1), fmt.Sprintf("%.4f W/MHz", model.Gains[i])})
	}
	rows = append(rows,
		[]string{"offset C", fmt.Sprintf("%.1f W", model.Offset)},
		[]string{"R^2", fmt.Sprintf("%.4f (paper: 0.96)", model.R2)},
	)
	fmt.Print(trace.Table([]string{"coefficient", "value"}, rows))

	// Measured-vs-predicted chart across the excitation schedule.
	meas := make([]float64, len(records))
	pred := make([]float64, len(records))
	for i, r := range records {
		meas[i] = r.PowerW
		pred[i], _ = model.Predict(r.Freqs)
	}
	fmt.Println()
	fmt.Print(trace.Chart([]trace.Series{
		{Name: "measured", Values: meas},
		{Name: "predicted", Values: pred},
	}, 72, 14, nanNaN(), "Fig. 2a — measured vs predicted power across the excitation schedule"))

	// Fig. 2b latency law.
	f2b, err := experiments.Fig2bLatencyModel(*wl, *seed)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("\nLatency law for %s: e = %.4f * (1350/f)^0.91, R^2 = %.4f (paper: ~0.91)\n",
		f2b.Workload, f2b.Model.EMin, f2b.Model.R2)
	fmt.Printf("Free fit: gamma = %.3f, R^2 = %.4f\n", f2b.FreeFit.Gamma, f2b.FreeFit.R2)
	fmt.Print(trace.Chart([]trace.Series{
		{Name: "measured", Values: f2b.Measured},
		{Name: "gamma-law", Values: f2b.Predicted},
	}, 72, 12, nanNaN(), "Fig. 2b — measured vs predicted batch latency (435 -> 1350 MHz)"))
}

func nanNaN() float64 {
	var z float64
	return z / z // NaN without importing math
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "capgpu-sysid:", err)
	os.Exit(1)
}
