// Command capgpu-sim runs one power-capping session on the simulated
// GPU-server testbed with a selectable controller and renders the power
// trace as an ASCII chart plus a summary table.
//
// Usage:
//
//	capgpu-sim [flags]
//
//	-controller string   one of: capgpu, capgpu-slsqp, capgpu-uniform,
//	                     gpu-only, cpu-only, cpu+gpu-50, cpu+gpu-60,
//	                     fixed-step-1, fixed-step-5, safe-fixed-step-1,
//	                     safe-fixed-step-3, safe-fixed-step-5 (default capgpu)
//	-setpoint float      power cap in Watts (default 900)
//	-periods int         control periods to run (default 100)
//	-seed int            simulation seed (default 1)
//	-csv string          optional path to write the per-period CSV trace
//	-faults string       fault-injection DSL, e.g. "meter-dropout@30+10"
//	                     (kind@start+duration[:target][*magnitude]; ';'-joined)
//	-no-degrade          disable graceful degradation (the R1 strawman)
//
// Telemetry (see DESIGN.md "Telemetry & observability"):
//
//	-metrics-addr string     serve /metrics, /events, /healthz on this
//	                         address during and after the run; the process
//	                         then stays up until SIGINT (or -hold elapses)
//	-events string           append the JSONL event stream to this file
//	-metrics-snapshot string write the final Prometheus exposition here
//	-events-selfcheck        after the run, verify the event stream is
//	                         balanced and the telemetry counters match the
//	                         metrics summary (exit 1 on mismatch)
//	-hold duration           with -metrics-addr, serve for this long after
//	                         the run instead of waiting for SIGINT
//	-alerts                  run the online alert engine (slo-burn,
//	                         cap-sustain, meter-stale) and print the fired
//	                         alert windows after the run
//	-energy                  print the energy-attribution ledger table
//	                         (node × class × state × epoch) after the run
//	-series-csv string       export the downsampled time-series store as
//	                         CSV to this path (see -series-res)
//	-series-res int          store resolution for -series-csv: 1, 10, or
//	                         100 periods per bucket (default 10)
//
// Flight recorder (see DESIGN.md "Flight recorder & diagnosis"):
//
//	-flight string       write the per-period DecisionRecord JSONL here
//	                     (feed it to capgpu-doctor)
//	-flight-dump string  write black-box dumps (last N decision records,
//	                     triggered by violations/fail-safe/divergence) here
//	-pprof               with -metrics-addr, also serve net/http/pprof
//	                     under /debug/pprof/
package main

import (
	"bytes"
	"flag"
	"fmt"
	"math"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/experiments"
	"repro/internal/faults"
	"repro/internal/flight"
	"repro/internal/runtimeobs"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	controller := flag.String("controller", "capgpu", "controller name ("+strings.Join(experiments.ControllerNames(), ", ")+")")
	setpoint := flag.Float64("setpoint", 900, "power cap in Watts")
	periods := flag.Int("periods", 100, "control periods (T = 4 s each)")
	seed := flag.Int64("seed", 1, "simulation seed")
	csvPath := flag.String("csv", "", "write per-period CSV trace to this path")
	sloMode := flag.Bool("slo", false, "run the §6.4 SLO-adaptation scenario and chart per-GPU latency vs SLO")
	faultsDSL := flag.String("faults", "", "fault schedule DSL ("+faults.KindNames()+"); try "+experiments.RobustnessScenario)
	noDegrade := flag.Bool("no-degrade", false, "disable graceful degradation under -faults (the unsafe strawman)")
	metricsAddr := flag.String("metrics-addr", "", "serve /metrics, /events, /healthz on this address (e.g. :9090)")
	eventsPath := flag.String("events", "", "write the JSONL telemetry event stream to this path")
	snapshotPath := flag.String("metrics-snapshot", "", "write the final Prometheus exposition to this path")
	selfCheck := flag.Bool("events-selfcheck", false, "verify event-stream balance and counter/summary parity after the run")
	hold := flag.Duration("hold", 0, "with -metrics-addr, keep serving this long after the run (0 = until SIGINT)")
	flightPath := flag.String("flight", "", "write the flight-recorder DecisionRecord JSONL to this path")
	dumpPath := flag.String("flight-dump", "", "write incident-triggered black-box dumps (JSONL) to this path")
	pprofOn := flag.Bool("pprof", false, "with -metrics-addr, also serve net/http/pprof under /debug/pprof/")
	alertsOn := flag.Bool("alerts", false, "run the online alert engine and print fired alert windows after the run")
	energyOn := flag.Bool("energy", false, "print the energy-attribution ledger table after the run")
	seriesPath := flag.String("series-csv", "", "export the downsampled time-series store as CSV to this path")
	seriesRes := flag.Int("series-res", 10, "store resolution for -series-csv: 1, 10, or 100 periods per bucket")
	workloadKind := flag.String("workload", "", "workload family: cnn (default, the §6.1 rig) or llm (continuous-batching LLM serving with the R2 prefill/decode regime switch)")
	llmSpec := flag.String("llm-spec", "", "with -workload llm, serving-mix DSL \"model@rate:prompt+output[*experts];...\" (empty = "+experiments.DefaultLLMSpecDSL+")")
	flag.Parse()

	if *pprofOn && *metricsAddr == "" {
		fmt.Fprintln(os.Stderr, "capgpu-sim: -pprof requires -metrics-addr")
		os.Exit(1)
	}

	if *sloMode {
		runSLO(*controller, *seed, *periods)
		return
	}

	var sched *faults.Schedule
	if *faultsDSL != "" {
		var err error
		sched, err = faults.Parse(*faultsDSL, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
			os.Exit(1)
		}
	}

	// Telemetry is built only when a flag asks for it; the default run is
	// the uninstrumented fast path. The wall clock lives here, at the cmd
	// layer — seeded packages only ever see the injected Clock. It counts
	// from a process-start origin so phase spans ride Go's monotonic
	// clock: no NTP steps, and full float64 resolution at small values
	// instead of the ~240 ns quantization of a raw Unix epoch.
	var hub *telemetry.Hub
	var eventsFile *os.File
	var eventsBuf *bytes.Buffer
	if *metricsAddr != "" || *eventsPath != "" || *snapshotPath != "" || *selfCheck ||
		*alertsOn || *energyOn || *seriesPath != "" {
		start := time.Now()
		cfg := telemetry.Config{Clock: func() float64 { return time.Since(start).Seconds() }}
		if *alertsOn {
			cfg.Alerts = &telemetry.AlertConfig{}
		}
		if *eventsPath != "" {
			f, err := os.Create(*eventsPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
				os.Exit(1)
			}
			eventsFile = f
			cfg.JSONL = f
		} else if *selfCheck || *alertsOn {
			// The self-check and the alert report need the complete
			// stream; the in-memory ring is bounded and drops the oldest
			// events on long runs, which would turn surviving exits into
			// spurious orphans (and lose early firings).
			eventsBuf = &bytes.Buffer{}
			cfg.JSONL = eventsBuf
		}
		hub = telemetry.New(cfg)
	}
	if *metricsAddr != "" {
		handler := runtimeobs.Attach(hub.Registry()).Wrap(withPprof(telemetry.Handler(hub), *pprofOn))
		addr, err := telemetry.ServeHandler(handler, *metricsAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
			os.Exit(1)
		}
		extra := ""
		if *pprofOn {
			extra = ", /debug/pprof/"
		}
		fmt.Printf("telemetry: serving http://%s/metrics (/events, /healthz%s)\n\n", addr, extra)
	}

	// A nil *Hub must stay a nil Sink interface, or the harness's
	// nil-checks would see a typed non-nil value.
	var sink telemetry.Sink
	if hub != nil {
		sink = hub
	}

	// The flight recorder rides next to telemetry: the ring always exists
	// once either flight flag asks for it, the JSONL stream only with
	// -flight, and -flight-dump interposes the black-box trigger between
	// the harness and the hub.
	var recorder *flight.Recorder
	var flightFile, dumpFile *os.File
	if *flightPath != "" || *dumpPath != "" {
		var fcfg flight.Config
		if *flightPath != "" {
			f, err := os.Create(*flightPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
				os.Exit(1)
			}
			flightFile = f
			fcfg.JSONL = f
		}
		recorder = flight.NewRecorder(fcfg)
	}
	if *dumpPath != "" {
		f, err := os.Create(*dumpPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
			os.Exit(1)
		}
		dumpFile = f
		sink = flight.NewDumpSink(sink, recorder, f, flight.DumpConfig{})
	}

	// SIGINT/SIGTERM stop the run at the next period boundary — the
	// in-flight period completes, every sink below still flushes, and a
	// clean shutdown exits 0 with the periods that actually ran.
	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	interrupted := false
	stop := func() bool {
		select {
		case sig := <-sigCh:
			fmt.Fprintf(os.Stderr, "capgpu-sim: %s — finishing the current period and flushing\n", sig)
			interrupted = true
			return true
		default:
			return false
		}
	}
	res, err := experiments.RunSessionWith(*controller, *seed, *periods,
		experiments.FixedSetpoint(*setpoint), nil, experiments.SessionOptions{
			Faults: sched, NoDegrade: *noDegrade, Telemetry: sink, Flight: recorder,
			Stop: stop, Workload: *workloadKind, LLMSpec: *llmSpec,
		})
	signal.Stop(sigCh)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
		os.Exit(1)
	}
	ranPeriods := len(res.Records)
	if interrupted {
		fmt.Printf("interrupted: ran %d of %d periods\n\n", ranPeriods, *periods)
	}

	power := res.PowerSeries()
	series := []trace.Series{{Name: res.Controller, Values: power}}
	if sched != nil {
		// Under faults the meter lies; chart the breaker-side truth too.
		truth := make([]float64, len(res.Records))
		for i, r := range res.Records {
			truth[i] = r.TrueAvgPowerW
		}
		series = append(series, trace.Series{Name: "true power", Values: truth})
	}
	fmt.Print(trace.Chart(
		series,
		72, 16, *setpoint,
		fmt.Sprintf("Server power under %s (set point %.0f W, %d periods)", res.Controller, *setpoint, ranPeriods)))
	fmt.Println()

	s := res.Summary
	settling := "never"
	if s.Settling >= 0 {
		settling = fmt.Sprintf("%d periods (%d s)", s.Settling, 4*s.Settling)
	}
	fmt.Print(trace.Table(
		[]string{"metric", "value"},
		[][]string{
			{"steady-state mean", fmt.Sprintf("%.1f W (error %+.1f W)", s.Mean, s.Mean-*setpoint)},
			{"steady-state std", fmt.Sprintf("%.2f W", s.Std)},
			{"RMSE vs cap", fmt.Sprintf("%.2f W", s.RMSE)},
			{"max period power", fmt.Sprintf("%.1f W", s.MaxW)},
			{"cap violations (>1%)", fmt.Sprintf("%d / %d periods", s.Violations, ranPeriods)},
			{"settling time", settling},
		}))

	// Application performance over the steady window.
	from := len(res.Records) * 2 / 10
	var gpuT [3]float64
	var cpuT float64
	n := 0.0
	for _, r := range res.Records[from:] {
		for i := 0; i < len(r.GPUThroughput) && i < 3; i++ {
			gpuT[i] += r.GPUThroughput[i]
		}
		cpuT += r.CPUThroughput
		n++
	}
	fmt.Println()
	fmt.Printf("steady-state throughput: GPU0 %.1f img/s, GPU1 %.1f img/s, GPU2 %.1f img/s, CPU %.1f subsets/s\n",
		gpuT[0]/n, gpuT[1]/n, gpuT[2]/n, cpuT/n)

	if sched != nil {
		degraded, failSafe, trueViol := 0, 0, 0
		worst := 0.0
		for _, r := range res.Records {
			if r.Degraded {
				degraded++
			}
			if r.FailSafe {
				failSafe++
			}
			if r.TrueAvgPowerW > *setpoint*1.02 {
				trueViol++
			}
			if d := r.TrueAvgPowerW - *setpoint; d > worst {
				worst = d
			}
		}
		fmt.Println()
		fmt.Print(trace.Table(
			[]string{"robustness", "value"},
			[][]string{
				{"fault schedule", sched.String()},
				{"degraded periods (last-good fallback)", fmt.Sprintf("%d", degraded)},
				{"fail-safe periods (descent to f_min)", fmt.Sprintf("%d", failSafe)},
				{"true-power cap violations (>2%)", fmt.Sprintf("%d / %d periods", trueViol, ranPeriods)},
				{"worst true-power excess", fmt.Sprintf("%.1f W", worst)},
			}))
	}

	if *csvPath != "" {
		var set trace.Set
		set.Add("power_w", power)
		sp := make([]float64, len(power))
		cpu := make([]float64, len(power))
		for i, r := range res.Records {
			sp[i] = r.SetpointW
			cpu[i] = r.CPUFreqGHz
		}
		set.Add("setpoint_w", sp)
		set.Add("cpu_ghz", cpu)
		if sched != nil {
			truth := make([]float64, len(power))
			degraded := make([]bool, len(power))
			failSafe := make([]bool, len(power))
			for i, r := range res.Records {
				truth[i] = r.TrueAvgPowerW
				degraded[i] = r.Degraded
				failSafe[i] = r.FailSafe
			}
			set.Add("true_power_w", truth)
			set.AddFlags("degraded", degraded)
			set.AddFlags("failsafe", failSafe)
		}
		for g := 0; g < len(res.Records[0].GPUFreqMHz); g++ {
			col := make([]float64, len(power))
			for i, r := range res.Records {
				col[i] = r.GPUFreqMHz[g]
			}
			set.Add(fmt.Sprintf("gpu%d_mhz", g), col)
		}
		f, err := os.Create(*csvPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
			os.Exit(1)
		}
		werr := set.WriteCSV(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim:", werr)
			os.Exit(1)
		}
		fmt.Println("trace written to", *csvPath)
	}

	if recorder != nil {
		if err := recorder.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim: flight record:", err)
			os.Exit(1)
		}
		if flightFile != nil {
			if err := flightFile.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
				os.Exit(1)
			}
			fmt.Printf("flight record written to %s (%d periods; inspect with capgpu-doctor)\n", *flightPath, recorder.Total())
		}
	}
	if dumpFile != nil {
		if ds, ok := sink.(*flight.DumpSink); ok {
			if err := ds.Err(); err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-sim: flight dump:", err)
				os.Exit(1)
			}
		}
		if err := dumpFile.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
			os.Exit(1)
		}
		fmt.Println("black-box dumps written to", *dumpPath)
	}

	if hub != nil {
		if err := finishTelemetry(hub, eventsFile, *eventsPath, *snapshotPath); err != nil {
			fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
			os.Exit(1)
		}
		if *alertsOn {
			events, err := completeEvents(*eventsPath, eventsBuf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
				os.Exit(1)
			}
			printAlertWindows(flight.AlertWindows(events))
		}
		if *energyOn {
			fmt.Println()
			fmt.Print(telemetry.FormatLedgerTable(hub.LedgerTable()))
		}
		if *seriesPath != "" {
			f, err := os.Create(*seriesPath)
			if err == nil {
				err = hub.WriteStoreCSV(f, *seriesRes)
				if cerr := f.Close(); err == nil {
					err = cerr
				}
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-sim: series export:", err)
				os.Exit(1)
			}
			fmt.Printf("series store (res %d) written to %s\n", *seriesRes, *seriesPath)
		}
		if *selfCheck {
			events, err := completeEvents(*eventsPath, eventsBuf)
			if err == nil {
				err = selfCheckTelemetry(hub, res, events)
			}
			if err != nil {
				fmt.Fprintln(os.Stderr, "capgpu-sim: telemetry self-check FAILED:", err)
				os.Exit(1)
			}
		}
	}
	if *metricsAddr != "" {
		holdServing(*hold)
	}
}

// withPprof mounts the hub handler at / and, when enabled, the pprof
// endpoints under /debug/pprof/ — kept at the cmd layer so the
// deterministic telemetry package never imports net/http/pprof.
func withPprof(h http.Handler, enable bool) http.Handler {
	if !enable {
		return h
	}
	mux := http.NewServeMux()
	mux.Handle("/", h)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// finishTelemetry closes open lifecycle states, flushes the JSONL file,
// and writes the Prometheus snapshot.
func finishTelemetry(hub *telemetry.Hub, eventsFile *os.File, eventsPath, snapshotPath string) error {
	if err := hub.Finish(); err != nil {
		return fmt.Errorf("event stream: %w", err)
	}
	if eventsFile != nil {
		if err := eventsFile.Close(); err != nil {
			return err
		}
		fmt.Println("events written to", eventsPath)
	}
	if snapshotPath != "" {
		f, err := os.Create(snapshotPath)
		if err != nil {
			return err
		}
		werr := hub.Registry().WritePrometheus(f)
		if cerr := f.Close(); werr == nil {
			werr = cerr
		}
		if werr != nil {
			return werr
		}
		fmt.Println("metrics snapshot written to", snapshotPath)
	}
	return nil
}

// completeEvents returns the full event stream for the self-check: the
// JSONL file (reopened after finishTelemetry flushed it) or the
// in-memory JSONL buffer — never the bounded event ring, whose eviction
// of old events would strand surviving exits without their enters.
func completeEvents(eventsPath string, eventsBuf *bytes.Buffer) ([]telemetry.Event, error) {
	if eventsPath != "" {
		f, err := os.Open(eventsPath)
		if err != nil {
			return nil, err
		}
		defer func() { _ = f.Close() }()
		return telemetry.ReadEvents(f)
	}
	return telemetry.ReadEvents(eventsBuf)
}

// selfCheckTelemetry is the acceptance gate behind -events-selfcheck:
// the event stream must be balanced (every degraded/fail-safe/fault
// enter has its exit) and the derived counters must agree exactly with
// the period records and the metrics summary.
func selfCheckTelemetry(hub *telemetry.Hub, res *experiments.RunResult, events []telemetry.Event) error {
	if err := telemetry.CheckBalance(events); err != nil {
		return err
	}
	wantViol, wantMiss := 0, 0
	for _, r := range res.Records {
		if r.SetpointW > 0 && r.AvgPowerW > r.SetpointW*1.01 {
			wantViol++
		}
		for _, m := range r.SLOMiss {
			if m {
				wantMiss++
			}
		}
	}
	node := telemetry.L("node", experiments.TelemetryNode)
	gotViol := int(hub.CounterValue("capgpu_cap_violations_total", node))
	if gotViol != wantViol {
		return fmt.Errorf("cap-violation counter %d != %d from period records", gotViol, wantViol)
	}
	if s := res.Summary; gotViol != s.Violations {
		return fmt.Errorf("cap-violation counter %d != metrics summary %d", gotViol, s.Violations)
	}
	gotMiss := 0
	for g := 0; g < len(res.Records[0].SLOMiss); g++ {
		gotMiss += int(hub.CounterValue("capgpu_slo_misses_total", node.With("gpu", strconv.Itoa(g))))
	}
	if gotMiss != wantMiss {
		return fmt.Errorf("SLO-miss counter %d != %d from period records", gotMiss, wantMiss)
	}
	fmt.Printf("\ntelemetry self-check ok: %d events balanced, %d cap violations and %d SLO misses match the summary\n",
		hub.EventsTotal(), gotViol, gotMiss)
	return nil
}

// printAlertWindows renders the online alert engine's verdict: every
// firing→resolved window the run produced, or an explicit all-clear.
func printAlertWindows(ws []flight.AlertWindow) {
	fmt.Println()
	if len(ws) == 0 {
		fmt.Println("alerts: none fired")
		return
	}
	fmt.Printf("alerts: %d fired\n", len(ws))
	for _, w := range ws {
		fmt.Printf("  %-12s %-16s periods %d-%d\n", w.Node, w.Rule, w.Start, w.End)
	}
}

// holdServing keeps the -metrics-addr endpoint alive after the run: for
// a fixed duration when -hold is set, otherwise until SIGINT/SIGTERM.
func holdServing(hold time.Duration) {
	if hold > 0 {
		fmt.Printf("telemetry: holding the endpoint for %s\n", hold)
		time.Sleep(hold)
		return
	}
	fmt.Println("telemetry: endpoint stays up — SIGINT to exit")
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	<-ch
}

// runSLO reproduces the Fig. 8/9 view for one controller: per-GPU batch
// latency against the (changing) SLO, plus deadline miss rates.
func runSLO(controller string, seed int64, periods int) {
	if periods > 60 || periods <= 0 {
		periods = 60
	}
	res, err := experiments.Fig8Fig9SLOAdaptation(seed, periods)
	if err != nil {
		fmt.Fprintln(os.Stderr, "capgpu-sim:", err)
		os.Exit(1)
	}
	run, ok := res.Runs[controller]
	if !ok {
		fmt.Fprintf(os.Stderr, "capgpu-sim: -slo supports %v\n", res.Order)
		os.Exit(1)
	}
	ng := len(run.Records[0].GPULatencyS)
	for g := 0; g < ng; g++ {
		lat := make([]float64, len(run.Records))
		slo := make([]float64, len(run.Records))
		for i, r := range run.Records {
			lat[i] = r.GPULatencyS[g] * 1000 // ms
			slo[i] = r.SLOs[g] * 1000
		}
		fmt.Print(trace.Chart([]trace.Series{
			{Name: "latency (ms)", Values: lat},
			{Name: "SLO (ms)", Values: slo},
		}, 72, 10, math.NaN(),
			fmt.Sprintf("GPU %d — %s (SLOs change at period %d)", g, run.Controller, res.ChangePeriod)))
		fmt.Printf("miss rate: %.0f%% overall, %.0f%% after the change\n\n",
			100*run.MissRate[g], 100*run.PostChangeMissRate[g])
	}
}
