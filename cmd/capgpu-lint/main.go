// Command capgpu-lint runs the repo's domain-aware static-analysis
// suite (internal/lint) over every non-test package in the module:
// unit-suffix naming, determinism of the seeded-replay surfaces, float
// comparison/division safety, and discarded errors.
//
// Usage:
//
//	capgpu-lint [-dir .] [-rule units|determinism|floatsafety|errcheck]
//
// Exit status: 0 clean, 1 findings, 2 load/usage failure. Intentional
// exceptions are suppressed at the use site with
// `//lint:ignore <rule> <reason>`.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

func main() {
	dir := flag.String("dir", ".", "module root to analyze")
	rule := flag.String("rule", "", "run only the named analyzer (default: all)")
	flag.Parse()

	pkgs, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capgpu-lint: %v\n", err)
		os.Exit(2)
	}
	analyzers := lint.DefaultAnalyzers()
	if *rule != "" {
		var picked []lint.Analyzer
		for _, a := range analyzers {
			if a.Name() == *rule {
				picked = append(picked, a)
			}
		}
		if picked == nil {
			fmt.Fprintf(os.Stderr, "capgpu-lint: unknown rule %q\n", *rule)
			os.Exit(2)
		}
		analyzers = picked
	}
	findings := lint.Run(pkgs, analyzers)
	for _, d := range findings {
		fmt.Println(d.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "capgpu-lint: %d finding(s) in %d package(s)\n", len(findings), len(pkgs))
		os.Exit(1)
	}
	fmt.Printf("capgpu-lint: %d packages clean\n", len(pkgs))
}
