// Command capgpu-lint runs the repo's domain-aware static-analysis
// suite (internal/lint) over every non-test package in the module:
// unit-suffix naming (units), determinism of the seeded-replay surfaces
// (determinism), float comparison/division safety (floatsafety),
// discarded errors (errcheck), mutex acquisition ordering (lockorder),
// allocation shapes on //capgpu:hotpath call trees (hotalloc), cluster
// mutator confinement to //capgpu:barrier roots (barrierconfine), and
// the latched-first-error contract on stream writers (stickyerr).
//
// Usage:
//
//	capgpu-lint [-dir .] [-rule <name>] [-json]
//
// -rule runs one analyzer by name (see above). -json replaces the
// line-oriented output with a single machine-readable document —
// findings plus per-rule counts — for CI annotation tooling.
//
// Exit status: 0 clean, 1 findings, 2 load/usage failure. Intentional
// exceptions are suppressed at the use site with
// `//lint:ignore <rule> <reason>`; the rule name must be one of the
// analyzers above (a typo is itself a finding).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/lint"
)

// jsonFinding is one diagnostic in -json output, flattened for
// annotation tooling (file/line/column at the top level).
type jsonFinding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Column  int    `json:"column"`
	Rule    string `json:"rule"`
	Message string `json:"message"`
}

// jsonReport is the -json document: the findings, how many each rule
// produced, and how many packages were analyzed.
type jsonReport struct {
	Findings []jsonFinding  `json:"findings"`
	ByRule   map[string]int `json:"by_rule"`
	Packages int            `json:"packages"`
}

func main() {
	dir := flag.String("dir", ".", "module root to analyze")
	rule := flag.String("rule", "", "run only the named analyzer (default: all)")
	asJSON := flag.Bool("json", false, "emit findings as one JSON document instead of lines")
	flag.Parse()

	pkgs, err := lint.LoadModule(*dir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "capgpu-lint: %v\n", err)
		os.Exit(2)
	}
	analyzers := lint.DefaultAnalyzers()
	if *rule != "" {
		var picked []lint.Analyzer
		for _, a := range analyzers {
			if a.Name() == *rule {
				picked = append(picked, a)
			}
		}
		if picked == nil {
			fmt.Fprintf(os.Stderr, "capgpu-lint: unknown rule %q\n", *rule)
			os.Exit(2)
		}
		analyzers = picked
	}
	findings := lint.Run(pkgs, analyzers)
	if *asJSON {
		report := jsonReport{
			Findings: make([]jsonFinding, 0, len(findings)),
			ByRule:   make(map[string]int),
			Packages: len(pkgs),
		}
		for _, d := range findings {
			report.Findings = append(report.Findings, jsonFinding{
				File: d.Pos.Filename, Line: d.Pos.Line, Column: d.Pos.Column,
				Rule: d.Rule, Message: d.Message,
			})
			report.ByRule[d.Rule]++
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			fmt.Fprintf(os.Stderr, "capgpu-lint: %v\n", err)
			os.Exit(2)
		}
		if len(findings) > 0 {
			os.Exit(1)
		}
		return
	}
	for _, d := range findings {
		fmt.Println(d.String())
	}
	if len(findings) > 0 {
		counts := make(map[string]int)
		for _, d := range findings {
			counts[d.Rule]++
		}
		fmt.Fprintf(os.Stderr, "capgpu-lint: %d finding(s) in %d package(s):", len(findings), len(pkgs))
		for _, r := range lint.AllRuleNames() {
			if counts[r] > 0 {
				fmt.Fprintf(os.Stderr, " %s=%d", r, counts[r])
			}
		}
		if counts["lint"] > 0 {
			fmt.Fprintf(os.Stderr, " lint=%d", counts["lint"])
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(1)
	}
	fmt.Printf("capgpu-lint: %d packages clean\n", len(pkgs))
}
