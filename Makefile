GO ?= go

.PHONY: all build test race vet fmt lint check bench

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Domain-aware static analysis (units, determinism, floatsafety,
# errcheck); exits nonzero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/capgpu-lint -dir .

check: build vet fmt lint test race

bench:
	$(GO) test -bench . -benchtime 1x .
