GO ?= go

.PHONY: all build test race vet fmt lint check bench bench-ratchet cover soak telemetry-verify doctor-verify trace-verify

# Ratcheted coverage floors. internal/cluster holds the parallel
# stepping and its equivalence/error-path suites; internal/controlplane
# holds the daemon's membership, checkpoint, and policy-API suites;
# internal/lint holds the contract analyzers and their fixture suites;
# internal/telemetry holds the sharded hub, time-series store, energy
# ledger, and alert-engine suites; internal/provenance holds the
# causal tracer and the capgpu-trace explain/attribution engine;
# internal/workload holds the CNN pipelines and the LLM serving family
# (continuous batching, phase power law, spec parser + fuzz corpus).
# A drop below a floor means proof rotted out. Raise a floor when
# coverage rises; never lower it.
CLUSTER_COVER_FLOOR = 95.0
CONTROLPLANE_COVER_FLOOR = 80.0
LINT_COVER_FLOOR = 90.0
TELEMETRY_COVER_FLOOR = 90.0
PROVENANCE_COVER_FLOOR = 80.0
WORKLOAD_COVER_FLOOR = 85.0

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Domain-aware static analysis (units, determinism, floatsafety,
# errcheck, lockorder, hotalloc, barrierconfine, stickyerr); exits
# nonzero on any unsuppressed finding. Add -json for the CI-annotation
# document form.
lint:
	$(GO) run ./cmd/capgpu-lint -dir .

# Allocation ratchet: measure the hot-path micro-benchmarks and fail if
# any allocs/op exceeds its committed ceiling in BENCH_FLOORS.json.
# Ceilings are tightened by hand when an optimization lands; the tool
# never rewrites the file.
bench-ratchet:
	$(GO) run ./cmd/capgpu-bench -ratchet BENCH_FLOORS.json

# End-to-end telemetry acceptance: a short fault-injected session whose
# degraded/fail-safe windows must produce a balanced JSONL event stream
# (every enter paired with an exit) and whose cap-violation / SLO-miss
# counters must match the end-of-run metrics summary exactly.
telemetry-verify:
	$(GO) run ./cmd/capgpu-sim -seed 7 -periods 60 \
		-faults "meter-dropout@10+6;meter-stuck@25+4;meter-spike@40+4*250" \
		-events /tmp/capgpu-telemetry-verify.jsonl \
		-metrics-snapshot /tmp/capgpu-telemetry-verify.prom \
		-events-selfcheck > /dev/null
	@echo "telemetry-verify: ok"

# End-to-end flight-recorder acceptance: capgpu-doctor must exit 0 on
# both a clean run and the R1 fault scenario under graceful degradation
# (every incident attributed: the blind window, the spike artifact, the
# actuator loss), and its flight record must be non-empty.
doctor-verify:
	$(GO) run ./cmd/capgpu-sim -seed 7 -periods 100 \
		-flight /tmp/capgpu-doctor-clean.jsonl > /dev/null
	$(GO) run ./cmd/capgpu-doctor -flight /tmp/capgpu-doctor-clean.jsonl > /dev/null
	$(GO) run ./cmd/capgpu-sim -seed 7 -periods 100 \
		-faults "meter-dropout@30+10;meter-spike@55+6*300;actuator-loss@70+5:gpu1*0.7" \
		-flight /tmp/capgpu-doctor-r1.jsonl \
		-flight-dump /tmp/capgpu-doctor-r1-dumps.jsonl \
		-events /tmp/capgpu-doctor-r1-events.jsonl > /dev/null
	$(GO) run ./cmd/capgpu-doctor -flight /tmp/capgpu-doctor-r1.jsonl \
		-events /tmp/capgpu-doctor-r1-events.jsonl > /dev/null
	@echo "doctor-verify: ok"

# End-to-end provenance acceptance: a golden daemon run with churn and
# hot reconfigs on every op kind, traced; capgpu-trace -verify must
# find every cap change in every flight stream attributed to a
# cap-change span whose period, node, and parent agree with the record
# (exit 1 on any unattributed change).
trace-verify:
	@rm -rf /tmp/capgpu-trace-verify && mkdir -p /tmp/capgpu-trace-verify
	$(GO) run ./cmd/capgpu-rack -serve -nodes 6 -periods 200 -workers 4 \
		-schedule "join@40:heavy;budget@60*4800;kill@88:n001;drain@120:n002;cap@150:n003*700;revive@160:n001" \
		-flight-dir /tmp/capgpu-trace-verify \
		-trace /tmp/capgpu-trace-verify/trace.jsonl > /dev/null
	$(GO) run ./cmd/capgpu-trace -trace /tmp/capgpu-trace-verify/trace.jsonl \
		-flight-dir /tmp/capgpu-trace-verify -verify
	@echo "trace-verify: ok"

# Coverage ratchet: each listed package must stay at or above its floor.
cover:
	@$(GO) test -coverprofile=/tmp/capgpu-cluster.cov ./internal/cluster/ | tee /tmp/capgpu-cluster-cover.txt
	@pct="$$(grep -o 'coverage: [0-9.]*' /tmp/capgpu-cluster-cover.txt | grep -o '[0-9.]*')"; \
	ok="$$(awk -v p="$$pct" -v f="$(CLUSTER_COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
	if [ "$$ok" != "1" ]; then \
		echo "cover: internal/cluster coverage $$pct% is below the $(CLUSTER_COVER_FLOOR)% floor"; exit 1; \
	fi; \
	echo "cover: internal/cluster $$pct% >= $(CLUSTER_COVER_FLOOR)% floor"
	@$(GO) test -coverprofile=/tmp/capgpu-controlplane.cov ./internal/controlplane/ | tee /tmp/capgpu-controlplane-cover.txt
	@pct="$$(grep -o 'coverage: [0-9.]*' /tmp/capgpu-controlplane-cover.txt | grep -o '[0-9.]*')"; \
	ok="$$(awk -v p="$$pct" -v f="$(CONTROLPLANE_COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
	if [ "$$ok" != "1" ]; then \
		echo "cover: internal/controlplane coverage $$pct% is below the $(CONTROLPLANE_COVER_FLOOR)% floor"; exit 1; \
	fi; \
	echo "cover: internal/controlplane $$pct% >= $(CONTROLPLANE_COVER_FLOOR)% floor"
	@$(GO) test -coverprofile=/tmp/capgpu-lint.cov ./internal/lint/ | tee /tmp/capgpu-lint-cover.txt
	@pct="$$(grep -o 'coverage: [0-9.]*' /tmp/capgpu-lint-cover.txt | grep -o '[0-9.]*')"; \
	ok="$$(awk -v p="$$pct" -v f="$(LINT_COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
	if [ "$$ok" != "1" ]; then \
		echo "cover: internal/lint coverage $$pct% is below the $(LINT_COVER_FLOOR)% floor"; exit 1; \
	fi; \
	echo "cover: internal/lint $$pct% >= $(LINT_COVER_FLOOR)% floor"
	@$(GO) test -coverprofile=/tmp/capgpu-telemetry.cov ./internal/telemetry/ | tee /tmp/capgpu-telemetry-cover.txt
	@pct="$$(grep -o 'coverage: [0-9.]*' /tmp/capgpu-telemetry-cover.txt | grep -o '[0-9.]*')"; \
	ok="$$(awk -v p="$$pct" -v f="$(TELEMETRY_COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
	if [ "$$ok" != "1" ]; then \
		echo "cover: internal/telemetry coverage $$pct% is below the $(TELEMETRY_COVER_FLOOR)% floor"; exit 1; \
	fi; \
	echo "cover: internal/telemetry $$pct% >= $(TELEMETRY_COVER_FLOOR)% floor"
	@$(GO) test -coverprofile=/tmp/capgpu-provenance.cov ./internal/provenance/ | tee /tmp/capgpu-provenance-cover.txt
	@pct="$$(grep -o 'coverage: [0-9.]*' /tmp/capgpu-provenance-cover.txt | grep -o '[0-9.]*')"; \
	ok="$$(awk -v p="$$pct" -v f="$(PROVENANCE_COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
	if [ "$$ok" != "1" ]; then \
		echo "cover: internal/provenance coverage $$pct% is below the $(PROVENANCE_COVER_FLOOR)% floor"; exit 1; \
	fi; \
	echo "cover: internal/provenance $$pct% >= $(PROVENANCE_COVER_FLOOR)% floor"
	@$(GO) test -coverprofile=/tmp/capgpu-workload.cov ./internal/workload/ | tee /tmp/capgpu-workload-cover.txt
	@pct="$$(grep -o 'coverage: [0-9.]*' /tmp/capgpu-workload-cover.txt | grep -o '[0-9.]*')"; \
	ok="$$(awk -v p="$$pct" -v f="$(WORKLOAD_COVER_FLOOR)" 'BEGIN { print (p >= f) ? 1 : 0 }')"; \
	if [ "$$ok" != "1" ]; then \
		echo "cover: internal/workload coverage $$pct% is below the $(WORKLOAD_COVER_FLOOR)% floor"; exit 1; \
	fi; \
	echo "cover: internal/workload $$pct% >= $(WORKLOAD_COVER_FLOOR)% floor"

# Deterministic control-plane soak: one simulated day (21600 periods)
# of diurnal + bursty load over a seeded churn schedule (joins, drains,
# node deaths) and hot reconfigs, gated on the budget invariant holding
# every period and on capgpu-doctor explaining every per-node incident.
# Exit 0 means the day was clean; artifacts (events, flight records,
# doctor reports, final checkpoint, metrics) land in /tmp/capgpu-soak.
soak:
	@rm -rf /tmp/capgpu-soak && mkdir -p /tmp/capgpu-soak
	$(GO) run ./cmd/capgpu-rack -soak \
		-events /tmp/capgpu-soak/events.jsonl \
		-metrics-snapshot /tmp/capgpu-soak/metrics.prom \
		-checkpoint /tmp/capgpu-soak/soak.ckpt \
		-flight-dir /tmp/capgpu-soak > /tmp/capgpu-soak/soak.log
	@tail -n 1 /tmp/capgpu-soak/soak.log
	@echo "soak: ok (artifacts in /tmp/capgpu-soak)"

check: build vet fmt lint test race cover bench-ratchet telemetry-verify doctor-verify trace-verify soak

bench:
	$(GO) test -bench . -benchtime 1x .
