GO ?= go

.PHONY: all build test race vet fmt lint check bench telemetry-verify

all: check

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# gofmt -l lists unformatted files; fail if any.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# Domain-aware static analysis (units, determinism, floatsafety,
# errcheck); exits nonzero on any unsuppressed finding.
lint:
	$(GO) run ./cmd/capgpu-lint -dir .

# End-to-end telemetry acceptance: a short fault-injected session whose
# degraded/fail-safe windows must produce a balanced JSONL event stream
# (every enter paired with an exit) and whose cap-violation / SLO-miss
# counters must match the end-of-run metrics summary exactly.
telemetry-verify:
	$(GO) run ./cmd/capgpu-sim -seed 7 -periods 60 \
		-faults "meter-dropout@10+6;meter-stuck@25+4;meter-spike@40+4*250" \
		-events /tmp/capgpu-telemetry-verify.jsonl \
		-metrics-snapshot /tmp/capgpu-telemetry-verify.prom \
		-events-selfcheck > /dev/null
	@echo "telemetry-verify: ok"

check: build vet fmt lint test race telemetry-verify

bench:
	$(GO) test -bench . -benchtime 1x .
