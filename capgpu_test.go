package capgpu_test

import (
	"fmt"
	"math"
	"testing"

	capgpu "repro"
)

// TestEndToEndQuickstart exercises the documented public-API flow.
func TestEndToEndQuickstart(t *testing.T) {
	// Identification twin.
	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(101))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 101); err != nil {
		t.Fatal(err)
	}
	model, err := capgpu.Identify(twin)
	if err != nil {
		t.Fatal(err)
	}
	if model.R2 < 0.9 {
		t.Fatalf("identification R² = %g", model.R2)
	}

	srv, err := capgpu.NewServer(capgpu.DefaultTestbed(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 1); err != nil {
		t.Fatal(err)
	}
	ctrl, err := capgpu.New(model, srv, nil, capgpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := capgpu.NewHarness(srv, ctrl, capgpu.FixedSetpoint(900))
	if err != nil {
		t.Fatal(err)
	}
	records, err := h.Run(60)
	if err != nil {
		t.Fatal(err)
	}
	sum := capgpu.Summarize(capgpu.PowerSeries(records), 900, 40)
	if math.Abs(sum.Mean-900) > 12 {
		t.Fatalf("steady-state mean %g, want ~900", sum.Mean)
	}
	if sum.Settling < 0 {
		t.Fatal("controller never settled")
	}
}

func TestBaselineConstructorsViaFacade(t *testing.T) {
	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(102))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 102); err != nil {
		t.Fatal(err)
	}
	model, err := capgpu.Identify(twin)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := capgpu.NewServer(capgpu.DefaultTestbed(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 2); err != nil {
		t.Fatal(err)
	}
	var ctrls []capgpu.PowerController
	if c, err := capgpu.NewFixedStep(srv, 1, 20); err == nil {
		ctrls = append(ctrls, c)
	} else {
		t.Fatal(err)
	}
	if c, err := capgpu.NewGPUOnly(model, srv, 0.45); err == nil {
		ctrls = append(ctrls, c)
	} else {
		t.Fatal(err)
	}
	if c, err := capgpu.NewCPUOnly(model, srv, 0.45); err == nil {
		ctrls = append(ctrls, c)
	} else {
		t.Fatal(err)
	}
	if c, err := capgpu.NewCPUPlusGPU(model, srv, 0.6, 250, 0.45); err == nil {
		ctrls = append(ctrls, c)
	} else {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, c := range ctrls {
		names[c.Name()] = true
	}
	for _, want := range []string{"Safe Fixed-Step", "GPU-Only", "CPU-Only", "CPU+GPU (60% GPU)"} {
		if !names[want] {
			t.Fatalf("missing controller %q in %v", want, names)
		}
	}
}

func TestModelZooAndLatencyFacade(t *testing.T) {
	zoo := capgpu.ModelZoo()
	prof, ok := zoo["resnet50"]
	if !ok {
		t.Fatal("resnet50 missing from zoo")
	}
	var freqs, lats []float64
	for f := 435.0; f <= 1350; f += 45 {
		freqs = append(freqs, f)
		lats = append(lats, prof.TrueBatchLatency(f, 1350))
	}
	lm, err := capgpu.FitLatencyModel(freqs, lats, 1350)
	if err != nil {
		t.Fatal(err)
	}
	if lm.Gamma < 0.8 || lm.Gamma > 1.3 {
		t.Fatalf("fitted gamma %g implausible", lm.Gamma)
	}
}

func TestAttachStandardWorkloadsValidation(t *testing.T) {
	cfg := capgpu.MotivationTestbed(3) // single GPU
	srv, err := capgpu.NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 3); err == nil {
		t.Fatal("expected error for single-GPU server")
	}
}

func TestSLOEnforcementViaFacade(t *testing.T) {
	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(103))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 103); err != nil {
		t.Fatal(err)
	}
	model, err := capgpu.Identify(twin)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := capgpu.NewServer(capgpu.DefaultTestbed(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 3); err != nil {
		t.Fatal(err)
	}
	zoo := capgpu.ModelZoo()
	lms := []*capgpu.LatencyModel{
		{EMin: zoo["resnet50"].EMinBatch, Gamma: 0.91, FMax: 1350},
		{EMin: zoo["swin_t"].EMinBatch, Gamma: 0.91, FMax: 1350},
		{EMin: zoo["vgg16"].EMinBatch, Gamma: 0.91, FMax: 1350},
	}
	ctrl, err := capgpu.New(model, srv, lms, capgpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	h, err := capgpu.NewHarness(srv, ctrl, capgpu.FixedSetpoint(1000))
	if err != nil {
		t.Fatal(err)
	}
	slos := []float64{lms[0].EMin * 1.4, lms[1].EMin * 3, lms[2].EMin * 3}
	h.SLOs = func(int) []float64 { return slos }
	records, err := h.Run(50)
	if err != nil {
		t.Fatal(err)
	}
	misses := 0
	for _, r := range records[15:] {
		for _, m := range r.SLOMiss {
			if m {
				misses++
			}
		}
	}
	if misses > 5 {
		t.Fatalf("too many SLO misses in steady state: %d", misses)
	}
}

func TestClusterFacade(t *testing.T) {
	build := func(seed int64) (*capgpu.Server, *capgpu.PowerModel) {
		srv, err := capgpu.NewServer(capgpu.DefaultTestbed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := capgpu.AttachStandardWorkloads(srv, seed); err != nil {
			t.Fatal(err)
		}
		twin, err := capgpu.NewServer(capgpu.DefaultTestbed(seed + 500))
		if err != nil {
			t.Fatal(err)
		}
		if err := capgpu.AttachStandardWorkloads(twin, seed+500); err != nil {
			t.Fatal(err)
		}
		model, err := capgpu.Identify(twin)
		if err != nil {
			t.Fatal(err)
		}
		return srv, model
	}
	var nodes []*capgpu.ClusterNode
	for i := int64(0); i < 2; i++ {
		srv, model := build(40 + i)
		ctrl, err := capgpu.New(model, srv, nil, capgpu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := capgpu.NewClusterNode(fmt.Sprintf("n%d", i), srv, ctrl, int(i))
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	coord, err := capgpu.NewCoordinator(nodes, capgpu.DemandProportionalPolicy{}, func(int) float64 { return 1900 })
	if err != nil {
		t.Fatal(err)
	}
	if err := coord.Run(20); err != nil {
		t.Fatal(err)
	}
	if len(coord.TotalPowerSeries()) != 20 {
		t.Fatal("coordinator did not run")
	}
}

func TestMultiLayerFacade(t *testing.T) {
	srv, err := capgpu.NewServer(capgpu.DefaultTestbed(60))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 60); err != nil {
		t.Fatal(err)
	}
	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(560))
	if err != nil {
		t.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 560); err != nil {
		t.Fatal(err)
	}
	model, err := capgpu.Identify(twin)
	if err != nil {
		t.Fatal(err)
	}
	inner, err := capgpu.New(model, srv, nil, capgpu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ml, err := capgpu.NewMultiLayer(inner, srv, model.Gains)
	if err != nil {
		t.Fatal(err)
	}
	if ml.Name() != "CapGPU + mem-throttle" {
		t.Fatalf("name = %q", ml.Name())
	}
}

func TestOnlineEstimatorFacade(t *testing.T) {
	est, err := capgpu.NewOnlineEstimator(2, nil, 0.99, 100)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := est.Update([]float64{1.5, 800}, 700); err != nil {
		t.Fatal(err)
	}
	if est.Count() != 1 {
		t.Fatalf("count = %d", est.Count())
	}
}

func TestHierarchyFacade(t *testing.T) {
	build := func(seed int64) *capgpu.ClusterNode {
		srv, err := capgpu.NewServer(capgpu.DefaultTestbed(seed))
		if err != nil {
			t.Fatal(err)
		}
		if err := capgpu.AttachStandardWorkloads(srv, seed); err != nil {
			t.Fatal(err)
		}
		twin, err := capgpu.NewServer(capgpu.DefaultTestbed(seed + 700))
		if err != nil {
			t.Fatal(err)
		}
		if err := capgpu.AttachStandardWorkloads(twin, seed+700); err != nil {
			t.Fatal(err)
		}
		model, err := capgpu.Identify(twin)
		if err != nil {
			t.Fatal(err)
		}
		ctrl, err := capgpu.New(model, srv, nil, capgpu.Options{})
		if err != nil {
			t.Fatal(err)
		}
		n, err := capgpu.NewClusterNode(fmt.Sprintf("n%d", seed), srv, ctrl, 0)
		if err != nil {
			t.Fatal(err)
		}
		return n
	}
	coord, err := capgpu.NewCoordinator(
		[]*capgpu.ClusterNode{build(70), build(71)},
		capgpu.UniformPolicy{}, func(int) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	rack, err := capgpu.NewRack("r0", coord, 1)
	if err != nil {
		t.Fatal(err)
	}
	h, err := capgpu.NewHierarchy([]*capgpu.Rack{rack}, capgpu.DemandProportionalPolicy{},
		func(int) float64 { return 1900 })
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Run(12); err != nil {
		t.Fatal(err)
	}
	if len(h.TotalPowerSeries()) != 12 {
		t.Fatal("hierarchy did not run")
	}
	if rack.Assigned() <= 0 {
		t.Fatal("rack received no budget")
	}
}
