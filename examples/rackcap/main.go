// rackcap: power oversubscription across a rack of CapGPU servers.
//
// Three GPU servers with very different loads — one saturated, one
// half-loaded, one nearly idle — share a rack breaker rated well below
// the sum of their peaks. A coordinator re-divides the rack budget every
// few control periods; each server's own CapGPU loop enforces its share.
// The example compares a naive equal split against demand-proportional
// allocation: same breaker, more inferences.
//
//	go run ./examples/rackcap
package main

import (
	"fmt"
	"log"

	capgpu "repro"
)

// buildNode assembles one server with nPipelines of the standard
// workloads and a locally identified CapGPU controller.
func buildNode(name string, seed int64, nPipelines, priority int) *capgpu.ClusterNode {
	build := func(sd int64) *capgpu.Server {
		srv, err := capgpu.NewServer(capgpu.DefaultTestbed(sd))
		if err != nil {
			log.Fatal(err)
		}
		zoo := capgpu.ModelZoo()
		cfgs := []capgpu.PipelineConfig{
			{Model: zoo["resnet50"], Workers: 2, PreLatencyBase: 0.004, PreLatencyExp: 0.4,
				ArrivalRateMax: 250, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: sd + 1},
			{Model: zoo["swin_t"], Workers: 2, PreLatencyBase: 0.010, PreLatencyExp: 0.4,
				ArrivalRateMax: 100, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: sd + 2},
			{Model: zoo["vgg16"], Workers: 2, PreLatencyBase: 0.008, PreLatencyExp: 0.4,
				ArrivalRateMax: 130, ArrivalExp: 0.5, QueueCap: 60, FcMax: 2.4, FgMax: 1350, Seed: sd + 3},
		}
		for i := 0; i < nPipelines; i++ {
			p, err := capgpu.NewPipeline(cfgs[i])
			if err != nil {
				log.Fatal(err)
			}
			if err := srv.AttachPipeline(i, p); err != nil {
				log.Fatal(err)
			}
		}
		w, err := capgpu.NewCPUWorkload(capgpu.CPUWorkloadConfig{RateAtMax: 40, FcMax: 2.4, Seed: sd + 9})
		if err != nil {
			log.Fatal(err)
		}
		srv.AttachCPUWorkload(w)
		return srv
	}
	twin := build(seed + 5000)
	model, err := capgpu.Identify(twin)
	if err != nil {
		log.Fatal(err)
	}
	srv := build(seed)
	ctrl, err := capgpu.New(model, srv, nil, capgpu.Options{})
	if err != nil {
		log.Fatal(err)
	}
	node, err := capgpu.NewClusterNode(name, srv, ctrl, priority)
	if err != nil {
		log.Fatal(err)
	}
	return node
}

func main() {
	const rackBudget = 2850.0 // Watts, ~75% of the three servers' combined peak

	for _, policy := range []capgpu.ClusterPolicy{
		capgpu.UniformPolicy{},
		capgpu.DemandProportionalPolicy{},
		capgpu.PriorityPolicy{},
	} {
		nodes := []*capgpu.ClusterNode{
			buildNode("heavy", 11, 3, 2),  // all three GPUs saturated
			buildNode("medium", 22, 2, 1), // two GPUs busy
			buildNode("light", 33, 1, 0),  // one GPU busy
		}
		coord, err := capgpu.NewCoordinator(nodes, policy, func(int) float64 { return rackBudget })
		if err != nil {
			log.Fatal(err)
		}
		if err := coord.Run(60); err != nil {
			log.Fatal(err)
		}

		total := coord.TotalPowerSeries()
		steadyMean := 0.0
		for _, p := range total[30:] {
			steadyMean += p
		}
		steadyMean /= float64(len(total) - 30)

		fmt.Printf("%-22s rack power %.0f / %.0f W, throughput %.0f img/s, caps:",
			policy.Name(), steadyMean, rackBudget, coord.AggregateThroughput(30))
		for _, n := range nodes {
			fmt.Printf("  %s=%.0fW", n.Name, n.Assigned())
		}
		fmt.Println()
	}

	fmt.Println()
	fmt.Println("Same breaker, three splits: demand-proportional moves the idle server's")
	fmt.Println("headroom to the saturated one and buys rack-level throughput; the")
	fmt.Println("priority policy instead guarantees the high-priority server its ceiling.")
}
