// multigpu-slo: latency SLOs on a capped multi-GPU server (§6.4).
//
// Three inference services share one server under a 1000 W cap. Halfway
// through the run, a demand burst tightens the SLOs of the Swin-T and
// VGG16 services while the ResNet50 service relaxes. CapGPU folds each
// SLO into its optimization as a per-GPU frequency floor (Eq. 10b,c), so
// it re-allocates the power budget device by device; a shared-clock
// GPU-Only controller cannot.
//
//	go run ./examples/multigpu-slo
package main

import (
	"fmt"
	"log"

	capgpu "repro"
)

func main() {
	// Identification twin + evaluation server with the §6.1 workloads.
	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(200))
	if err != nil {
		log.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 200); err != nil {
		log.Fatal(err)
	}
	model, err := capgpu.Identify(twin)
	if err != nil {
		log.Fatal(err)
	}

	// Latency models for SLO inversion: e = e_min(f_max/f)^0.91, with
	// e_min from offline profiling at the maximum clock.
	zoo := capgpu.ModelZoo()
	services := []string{"resnet50", "swin_t", "vgg16"}
	lms := make([]*capgpu.LatencyModel, len(services))
	for i, n := range services {
		lms[i] = &capgpu.LatencyModel{EMin: zoo[n].EMinBatch, Gamma: 0.91, FMax: 1350}
	}

	// SLO schedule: generous at first; at period 20 the Swin-T and VGG16
	// services tighten to 1.25x their best-case latency while ResNet50
	// relaxes to 2.5x.
	initial := []float64{lms[0].EMin * 1.8, lms[1].EMin * 2.0, lms[2].EMin * 2.0}
	burst := []float64{lms[0].EMin * 2.5, lms[1].EMin * 1.25, lms[2].EMin * 1.25}
	const changeAt = 20
	schedule := func(k int) []float64 {
		if k < changeAt {
			return initial
		}
		return burst
	}

	run := func(name string, build func(s *capgpu.Server) (capgpu.PowerController, error)) {
		srv, err := capgpu.NewServer(capgpu.DefaultTestbed(2))
		if err != nil {
			log.Fatal(err)
		}
		if err := capgpu.AttachStandardWorkloads(srv, 2); err != nil {
			log.Fatal(err)
		}
		ctrl, err := build(srv)
		if err != nil {
			log.Fatal(err)
		}
		h, err := capgpu.NewHarness(srv, ctrl, capgpu.FixedSetpoint(1000))
		if err != nil {
			log.Fatal(err)
		}
		h.SLOs = schedule
		records, err := h.Run(60)
		if err != nil {
			log.Fatal(err)
		}

		misses := make([]int, 3)
		post := 0
		for _, r := range records {
			if r.Period < changeAt+2 {
				continue
			}
			post++
			for g, m := range r.SLOMiss {
				if m {
					misses[g]++
				}
			}
		}
		fmt.Printf("%-10s post-burst SLO misses: resnet50 %d/%d, swin_t %d/%d, vgg16 %d/%d\n",
			name, misses[0], post, misses[1], post, misses[2], post)
		last := records[len(records)-1]
		fmt.Printf("%-10s final clocks: CPU %.1f GHz, GPUs %.0f / %.0f / %.0f MHz, power %.0f W\n\n",
			name, last.CPUFreqGHz, last.GPUFreqMHz[0], last.GPUFreqMHz[1], last.GPUFreqMHz[2], last.AvgPowerW)
	}

	fmt.Printf("SLOs (s/batch): start %.3f / %.3f / %.3f; from period %d: %.3f / %.3f / %.3f\n\n",
		initial[0], initial[1], initial[2], changeAt, burst[0], burst[1], burst[2])

	run("CapGPU", func(s *capgpu.Server) (capgpu.PowerController, error) {
		return capgpu.New(model, s, lms, capgpu.Options{})
	})
	run("GPU-Only", func(s *capgpu.Server) (capgpu.PowerController, error) {
		return capgpu.NewGPUOnly(model, s, 0.45)
	})

	fmt.Println("CapGPU holds every SLO by raising only the tightened services' clocks")
	fmt.Println("and paying for it with the relaxed service's and the CPU's headroom;")
	fmt.Println("GPU-Only's single shared clock cannot satisfy per-device SLOs under")
	fmt.Println("the same cap.")
}
