// setpoint-adaptation: power oversubscription in action (§6.4, Fig. 10).
//
// A data-center power manager raises a server's budget from 800 W to
// 900 W during a request surge and withdraws it afterwards. The example
// runs CapGPU and two baselines against the same schedule and renders
// their power traces, showing who tracks the moving cap and how fast.
//
//	go run ./examples/setpoint-adaptation
package main

import (
	"fmt"
	"log"
	"math"

	capgpu "repro"
	"repro/internal/trace"
)

func main() {
	schedule := func(k int) float64 {
		switch {
		case k < 40:
			return 800
		case k < 80:
			return 900
		default:
			return 800
		}
	}

	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(300))
	if err != nil {
		log.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 300); err != nil {
		log.Fatal(err)
	}
	model, err := capgpu.Identify(twin)
	if err != nil {
		log.Fatal(err)
	}

	var series []trace.Series
	for _, c := range []struct {
		name  string
		build func(s *capgpu.Server) (capgpu.PowerController, error)
	}{
		{"CapGPU", func(s *capgpu.Server) (capgpu.PowerController, error) {
			return capgpu.New(model, s, nil, capgpu.Options{})
		}},
		{"GPU-Only", func(s *capgpu.Server) (capgpu.PowerController, error) {
			return capgpu.NewGPUOnly(model, s, 0.45)
		}},
		{"Safe Fixed-Step", func(s *capgpu.Server) (capgpu.PowerController, error) {
			return capgpu.NewFixedStep(s, 1, 25)
		}},
	} {
		srv, err := capgpu.NewServer(capgpu.DefaultTestbed(3))
		if err != nil {
			log.Fatal(err)
		}
		if err := capgpu.AttachStandardWorkloads(srv, 3); err != nil {
			log.Fatal(err)
		}
		ctrl, err := c.build(srv)
		if err != nil {
			log.Fatal(err)
		}
		h, err := capgpu.NewHarness(srv, ctrl, schedule)
		if err != nil {
			log.Fatal(err)
		}
		records, err := h.Run(120)
		if err != nil {
			log.Fatal(err)
		}
		power := capgpu.PowerSeries(records)
		series = append(series, trace.Series{Name: c.name, Values: power})

		// Per-phase tracking error.
		phaseErr := func(from, to int, target float64) float64 {
			s, n := 0.0, 0.0
			for _, p := range power[from:to] {
				s += math.Abs(p - target)
				n++
			}
			return s / n
		}
		fmt.Printf("%-16s mean |error|: 800W phase %.1f W, 900W phase %.1f W, return %.1f W\n",
			c.name, phaseErr(20, 40, 800), phaseErr(60, 80, 900), phaseErr(100, 120, 800))
	}

	fmt.Println()
	fmt.Print(trace.Chart(series, 76, 18, math.NaN(),
		"Server power under the stepped budget (800 W -> 900 W @ period 40 -> 800 W @ 80)"))
}
