// featureselect: the paper's CPU workload, for real.
//
// §6.1 runs exhaustive feature selection over the Alibaba PAI trace on
// the host CPU's spare cores: fit and score a linear model on every
// feature subset by cross-validation, keep the subset with the lowest
// CV-MSE. This example executes the actual algorithm on the synthetic
// PAI-like trace, measures its throughput (feature subsets evaluated per
// second — the signal CapGPU's weight assignment consumes), and shows
// how the throughput scales with worker parallelism, the software
// analogue of the CPU-frequency scaling the simulator models.
//
//	go run ./examples/featureselect
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/dataset"
	"repro/internal/fsel"
)

func main() {
	trace, err := dataset.GeneratePAI(dataset.PAIConfig{Rows: 512, Features: 10, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic PAI trace: %d rows x %d features\n", len(trace.X), len(trace.FeatureNames))
	fmt.Printf("candidate features: %v\n\n", trace.FeatureNames)

	// Full exhaustive search: 2^10 - 1 = 1023 subsets, 5-fold CV each.
	start := time.Now()
	res, err := fsel.Exhaustive(trace.X, trace.Y, fsel.Options{Folds: 5})
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start).Seconds()

	fmt.Printf("evaluated %d subsets in %.2f s  ->  %.0f subsets/s\n",
		res.Evaluated, elapsed, fsel.Throughput(res.Evaluated, elapsed))
	fmt.Printf("best CV-MSE: %.6f\n", res.BestCVMSE)
	fmt.Print("best subset: ")
	for i, idx := range res.BestSubset {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(trace.FeatureNames[idx])
	}
	fmt.Println()

	truth := dataset.TrueSubset(trace.FeatureNames)
	fmt.Print("ground-truth drivers: ")
	for i, idx := range truth {
		if i > 0 {
			fmt.Print(", ")
		}
		fmt.Print(trace.FeatureNames[idx])
	}
	fmt.Println()
	fmt.Println()

	// Throughput vs parallelism: the calibration measurement behind the
	// simulator's CPU workload profile (rate scales with compute).
	fmt.Println("throughput vs workers (analogue of DVFS scaling):")
	for _, workers := range []int{1, 2, 4, 8} {
		start := time.Now()
		r, err := fsel.Exhaustive(trace.X, trace.Y, fsel.Options{Folds: 5, Parallel: workers})
		if err != nil {
			log.Fatal(err)
		}
		dt := time.Since(start).Seconds()
		fmt.Printf("  %d worker(s): %6.0f subsets/s\n", workers, fsel.Throughput(r.Evaluated, dt))
	}
	fmt.Println()
	fmt.Println("CapGPU normalizes this throughput by its maximum and inverts it to set")
	fmt.Println("the CPU's control penalty: when the search is making good progress the")
	fmt.Println("CPU earns frequency headroom; when it stalls, its power goes to the GPUs.")
}
