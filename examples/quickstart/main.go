// Quickstart: cap a simulated 3-GPU inference server at 900 W with the
// CapGPU controller, end to end — build the testbed, attach the paper's
// workloads, run system identification, then close the control loop.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	capgpu "repro"
)

func main() {
	// 1. Two identical servers: one to identify on (identification
	//    perturbs frequencies), one to control.
	twin, err := capgpu.NewServer(capgpu.DefaultTestbed(100))
	if err != nil {
		log.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(twin, 100); err != nil {
		log.Fatal(err)
	}
	srv, err := capgpu.NewServer(capgpu.DefaultTestbed(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := capgpu.AttachStandardWorkloads(srv, 1); err != nil {
		log.Fatal(err)
	}

	// 2. System identification (§4.2): fit p = A·F + C by exciting one
	//    knob at a time.
	model, err := capgpu.Identify(twin)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("identified power model (R² = %.3f):\n", model.R2)
	fmt.Printf("  CPU   %6.1f W/GHz\n", model.Gains[0])
	for i := 1; i < len(model.Gains); i++ {
		fmt.Printf("  GPU %d %6.3f W/MHz\n", i-1, model.Gains[i])
	}
	fmt.Printf("  C     %6.1f W\n\n", model.Offset)

	// 3. Build the CapGPU controller and the control loop (ACPI-style
	//    meter, delta-sigma frequency modulators, T = 4 s periods).
	ctrl, err := capgpu.New(model, srv, nil, capgpu.Options{})
	if err != nil {
		log.Fatal(err)
	}
	harness, err := capgpu.NewHarness(srv, ctrl, capgpu.FixedSetpoint(900))
	if err != nil {
		log.Fatal(err)
	}

	// 4. Run 100 control periods and report.
	records, err := harness.Run(100)
	if err != nil {
		log.Fatal(err)
	}
	summary := capgpu.Summarize(capgpu.PowerSeries(records), 900, 80)
	fmt.Printf("after %d periods at a 900 W cap:\n", len(records))
	fmt.Printf("  steady-state power  %.1f W (±%.1f W)\n", summary.Mean, summary.Std)
	fmt.Printf("  settling time       %d periods (%d s)\n", summary.Settling, 4*summary.Settling)
	fmt.Printf("  cap violations      %d\n\n", summary.Violations)

	last := records[len(records)-1]
	fmt.Println("final operating point:")
	fmt.Printf("  CPU  %.1f GHz\n", last.CPUFreqGHz)
	for i, f := range last.GPUFreqMHz {
		fmt.Printf("  GPU%d %.0f MHz  (%.0f img/s, %.0f ms/batch)\n",
			i, f, last.GPUThroughput[i], 1000*last.GPULatencyS[i])
	}
	fmt.Printf("  CPU workload: %.1f feature subsets/s\n", last.CPUThroughput)
}
